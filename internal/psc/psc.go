// Package psc implements the Private Set-Union Cardinality protocol
// (Fenske, Mani, Johnson, Sherr — CCS 2017) with the paper's extensions
// (§3.1): a tally server coordinating the data collectors (DCs) and
// computation parties (CPs), and ingestion of PrivCount events from
// instrumented relays.
//
// Each DC maintains an oblivious hash table: observed items (client
// IPs, domains, onion addresses) are hashed into bins and immediately
// discarded — no item is ever stored. Bins are encrypted bits under the
// CPs' joint ElGamal key. The protocol computes |⋃ᵢ Iᵢ| + noise:
//
//  1. DCs send encrypted bit tables; the TS homomorphically sums them,
//     turning per-bin sums into an OR in the exponent.
//  2. Each CP in turn appends fair-coin noise ciphertexts (with
//     Cramer–Damgård–Schoenmakers proofs they encrypt bits), shuffles
//     and re-randomizes the batch (cut-and-choose verifiable shuffle),
//     and exponent-blinds every ciphertext (Chaum–Pedersen proofs), so
//     only empty-vs-non-empty survives and nobody can link bins.
//  3. The CPs jointly decrypt (proving every decryption share); the TS
//     counts non-identity plaintexts.
//
// The reported value is occupied-bins + Binomial(k·|CPs|, ½); the
// estimator in internal/stats removes the noise mean and inverts hash
// collisions to recover the distinct count with an exact CI (§3.3).
// Privacy holds if at least one CP is honest; correctness is enforced
// against all CPs by the attached proofs.
package psc

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Config describes one PSC round.
type Config struct {
	Round uint64
	// Bins is the hash-table size b. It must comfortably exceed the
	// expected distinct count; the estimator corrects residual
	// collisions.
	Bins int
	// NoisePerCP is how many fair-coin noise ciphertexts each CP
	// injects. Total noise is Binomial(NoisePerCP·NumCPs, 1/2); the
	// calibration comes from dp.PSCNoiseTrials.
	NoisePerCP int
	// ShuffleProofRounds is the cut-and-choose soundness parameter
	// (error 2^-rounds). Zero disables shuffle/blind/bit proofs — an
	// honest-but-curious mode used only by the scale benchmarks; the
	// deployment default is 8.
	ShuffleProofRounds int
	NumDCs, NumCPs     int
	// ChunkElems is how many ciphertexts travel per chunk frame; zero
	// selects DefaultChunk. Smaller chunks tighten the per-party memory
	// bound of the element-wise phases at the cost of more frames.
	ChunkElems int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bins <= 0 {
		return fmt.Errorf("psc: bins must be positive")
	}
	if c.NoisePerCP < 0 {
		return fmt.Errorf("psc: negative noise")
	}
	if c.ShuffleProofRounds < 0 {
		return fmt.Errorf("psc: negative proof rounds")
	}
	if c.ChunkElems < 0 {
		return fmt.Errorf("psc: negative chunk size")
	}
	// A blind chunk carries ~330 bytes per element (ciphertext plus
	// DLEQ proof); past 2048 elements a chunk frame would approach the
	// wire frame cap and flow-control window.
	if c.ChunkElems > 2048 {
		return fmt.Errorf("psc: chunk size %d exceeds the frame budget (max 2048)", c.ChunkElems)
	}
	if c.NumDCs <= 0 {
		return fmt.Errorf("psc: need at least one DC")
	}
	if c.NumCPs <= 0 {
		return fmt.Errorf("psc: need at least one CP (privacy needs one honest CP)")
	}
	return nil
}

// TotalNoiseTrials returns the total number of coin flips in a round's
// report, the parameter the estimator needs.
func (c Config) TotalNoiseTrials() int { return c.NoisePerCP * c.NumCPs }

// binOf maps an item to its bin with a keyed hash, so items are
// consistent across DCs but unlinkable without the round key.
func binOf(key []byte, item string, bins int) int {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(item))
	sum := mac.Sum(nil)
	v := binary.LittleEndian.Uint64(sum[:8])
	return int(v % uint64(bins))
}
