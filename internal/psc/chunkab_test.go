package psc

import "testing"

// BenchmarkPSCRoundChunkSize sweeps the transfer-chunk size of a
// 2048-bin verified round. Chunking must be ~free: chunk granularity
// bounds frames and the feed/decrypt-phase residency (the shuffle
// phase has its own block size), and the per-chunk share RLCs shrink
// with it. A widening gap between chunk-2048 and the small chunks
// means per-chunk work crept into a hot path.
func BenchmarkPSCRoundChunkSize(b *testing.B) {
	run := func(b *testing.B, chunkElems int) {
		cfg := Config{Round: 1, Bins: 2048, NoisePerCP: 128, ShuffleProofRounds: 1,
			NumDCs: 2, NumCPs: 2, ChunkElems: chunkElems}
		mk, cleanup := pipePair(b)
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBenchRound(b, cfg, 800, mk)
		}
	}
	b.Run("chunk-256", func(b *testing.B) { run(b, 256) })
	b.Run("chunk-1024", func(b *testing.B) { run(b, 1024) })
	b.Run("chunk-2048", func(b *testing.B) { run(b, 2048) })
}
