package psc

import "testing"

// BenchmarkPSCRoundChunkSize sweeps the chunk size of a 2048-bin
// verified round. Chunking must be ~free: transfer-chunk granularity
// bounds frames and per-party memory, while the RLC batch proof
// verifications still amortize over whole vectors at the TS. A gap
// between chunk-2048 (two chunks for the 2304-element mixed vector)
// and the small chunks means per-chunk work crept into a hot path.
func BenchmarkPSCRoundChunkSize(b *testing.B) {
	run := func(b *testing.B, chunkElems int) {
		cfg := Config{Round: 1, Bins: 2048, NoisePerCP: 128, ShuffleProofRounds: 1,
			NumDCs: 2, NumCPs: 2, ChunkElems: chunkElems}
		mk, cleanup := pipePair(b)
		defer cleanup()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runBenchRound(b, cfg, 800, mk)
		}
	}
	b.Run("chunk-256", func(b *testing.B) { run(b, 256) })
	b.Run("chunk-1024", func(b *testing.B) { run(b, 1024) })
	b.Run("chunk-2048", func(b *testing.B) { run(b, 2048) })
}
