package psc

// Wire message kinds for the PSC round protocol. Ciphertext vectors
// never travel as one frame: every vector-valued phase is a header
// frame followed by bounded chunk frames, so a round's peak frame size
// is O(chunk) regardless of the table size, and a receiver can process
// (combine, verify, forward) each chunk while later chunks are still in
// flight.
const (
	kindRegister   = "psc/register"
	kindConfig     = "psc/configure"
	kindTable      = "psc/table"          // DC upload header, then chunks
	kindChunk      = "psc/chunk"          // one ciphertext-vector chunk
	kindMix        = "psc/mix"            // TS->CP input header, then chunks
	kindMixed      = "psc/mixed"          // CP->TS output header
	kindNoise      = "psc/noise"          // CP noise chunk with bit proofs
	kindShufBlock  = "psc/shuffle-block"  // one shuffled block with shadow commitments
	kindShufShadow = "psc/shuffle-shadow" // one opened shadow round of a block
	kindShufFeed   = "psc/shuffle-feed"   // pass>=2 claimed input block (re-streamed)
	kindBlind      = "psc/blind"          // blinded chunk with DLEQ proofs
	kindDecrypt    = "psc/decrypt"        // TS->CP final batch header, then chunks
	kindShares     = "psc/shares"         // CP->TS share stream header
	kindShare      = "psc/share-chunk"    // decryption-share chunk with proofs
)

// Party roles.
const (
	RoleDC = "dc"
	RoleCP = "cp"
)

// RegisterMsg announces a party. CPs include their ElGamal public key.
type RegisterMsg struct {
	Role   string
	Name   string
	PubKey []byte // CP only: encoded group point
}

// ConfigureMsg distributes the round parameters. The hash key goes to
// DCs only — CPs must not be able to test item membership.
type ConfigureMsg struct {
	Round              uint64
	Bins               int
	NoisePerCP         int
	ShuffleProofRounds int
	ShuffleBlockElems  int      // shuffle block size (0: DefaultShuffleBlock)
	ShufflePasses      int      // shuffle passes (0: DefaultShufflePasses)
	ChunkElems         int      // elements per vector chunk (0: DefaultChunk)
	JointKey           []byte   // combined CP public key
	CPKeys             [][]byte // individual CP keys, in pipeline order
	HashKey            []byte   // DCs only
}

// VectorHeader opens a chunked vector transfer (table upload, mix
// input, mixed output, decrypt input, share stream).
type VectorHeader struct {
	From  string
	Round uint64
	// N is the total element count the chunks must tile.
	N int
}

// ChunkMsg carries Count packed ciphertexts at element offset Off of
// the vector announced by the preceding header.
type ChunkMsg struct {
	Off, Count int
	Data       []byte
}

// NoiseChunkMsg carries a CP's appended noise ciphertexts (offsets are
// relative to the noise section) with their bit proofs.
type NoiseChunkMsg struct {
	Off, Count int
	Data       []byte
	Proofs     []wireBitProof
}

// BlockOutMsg carries one shuffled block of the streaming verifiable
// shuffle: the block's permuted, re-randomized ciphertexts plus the
// hash commitments to every shadow of its cut-and-choose argument. The
// commitments arrive before any shadow is revealed — they feed the
// Fiat–Shamir transcript that fixes the block's challenge bits.
type BlockOutMsg struct {
	Pass, Block, Count int
	Data               []byte   // Count packed ciphertexts
	Commits            [][]byte // one 32-byte shadow commitment per proof round
}

// BlockShadowMsg opens one cut-and-choose round of a block's argument:
// the shadow ciphertexts (which must match their commitment) and the
// permutation/randomizer opening for the challenged side.
type BlockShadowMsg struct {
	Pass, Block, Round, Count int
	Data                      []byte // Count packed shadow ciphertexts
	OpenPerm                  []int
	OpenRand                  [][]byte
}

// BlockFeedMsg re-streams one input block of a pass ≥ 2: the prover
// reads the previous pass's output back in the new pass's block order
// (a transpose for column passes) and the verifier checks the stream
// against the previous pass's per-block hashes, so the claimed input
// can never diverge from the verified intermediate vector.
type BlockFeedMsg struct {
	Pass, Block, Count int
	Data               []byte
}

// BlindChunkMsg carries exponent-blinded ciphertexts with their DLEQ
// proofs; the TS verifies and forwards each chunk downstream before the
// next arrives.
type BlindChunkMsg struct {
	Off, Count int
	Data       []byte
	Proofs     []wireEquality
}

// ShareChunkMsg carries a CP's decryption shares for one chunk of the
// final batch, with correctness proofs.
type ShareChunkMsg struct {
	Off, Count int
	Shares     []byte // packed points
	Proofs     []wireEquality
}

// Result is the TS's round outcome.
type Result struct {
	Round uint64
	// Reported is the protocol output: non-empty bins plus binomial
	// noise. Feed it to stats.UnionCardinalityCI with Bins and
	// NoiseTrials to recover the distinct count.
	Reported    int
	Bins        int
	NoiseTrials int
	// AbsentDCs lists data collectors declared absent under the quorum
	// policy: the round completed without their tables, so Reported
	// covers a reduced relay set. Empty for a full-strength round.
	AbsentDCs []string
}
