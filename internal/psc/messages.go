package psc

// Wire message kinds for the PSC round protocol.
const (
	kindRegister = "psc/register"
	kindConfig   = "psc/configure"
	kindTable    = "psc/table"
	kindMix      = "psc/mix"
	kindMixed    = "psc/mixed"
	kindDecrypt  = "psc/decrypt"
	kindShares   = "psc/shares"
)

// Party roles.
const (
	RoleDC = "dc"
	RoleCP = "cp"
)

// RegisterMsg announces a party. CPs include their ElGamal public key.
type RegisterMsg struct {
	Role   string
	Name   string
	PubKey []byte // CP only: encoded group point
}

// ConfigureMsg distributes the round parameters. The hash key goes to
// DCs only — CPs must not be able to test item membership.
type ConfigureMsg struct {
	Round              uint64
	Bins               int
	NoisePerCP         int
	ShuffleProofRounds int
	JointKey           []byte   // combined CP public key
	CPKeys             [][]byte // individual CP keys, in pipeline order
	HashKey            []byte   // DCs only
}

// TableMsg is a DC's encrypted bit table.
type TableMsg struct {
	From   string
	Round  uint64
	Vector []byte // packed ciphertexts, length Bins
}

// MixMsg hands the current batch to a CP for its mixing step.
type MixMsg struct {
	Round uint64
	N     int
	Batch []byte
}

// MixedMsg is the CP's output: noise appended (with bit proofs), then
// shuffled (with a cut-and-choose proof), then exponent-blinded (with
// per-element DLEQ proofs). Intermediate vectors let the TS verify each
// stage.
type MixedMsg struct {
	From  string
	Round uint64
	// WithNoise is the input batch plus this CP's noise ciphertexts.
	WithNoise []byte
	NoiseBits []wireBitProof
	// Shuffled is the batch after permutation and re-randomization.
	Shuffled     []byte
	ShuffleProof wireShuffleProof
	// Blinded is the final output after exponent blinding.
	Blinded     []byte
	BlindProofs []wireEquality
	N           int // elements in WithNoise/Shuffled/Blinded
}

// DecryptMsg asks a CP for decryption shares over the final batch.
type DecryptMsg struct {
	Round uint64
	N     int
	Batch []byte
}

// SharesMsg returns a CP's decryption shares with correctness proofs.
type SharesMsg struct {
	From   string
	Round  uint64
	Shares []byte // packed points, one per element
	Proofs []wireEquality
}

// Result is the TS's round outcome.
type Result struct {
	Round uint64
	// Reported is the protocol output: non-empty bins plus binomial
	// noise. Feed it to stats.UnionCardinalityCI with Bins and
	// NoiseTrials to recover the distinct count.
	Reported    int
	Bins        int
	NoiseTrials int
}
