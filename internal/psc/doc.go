// Package psc implements the Private Set-Union Cardinality protocol
// (Fenske, Mani, Johnson, Sherr — CCS 2017) with the paper's extensions
// (§3.1): a tally server coordinating the data collectors (DCs) and
// computation parties (CPs), and ingestion of PrivCount events from
// instrumented relays.
//
// Each DC maintains an oblivious hash table: observed items (client
// IPs, domains, onion addresses) are hashed into bins and immediately
// discarded — no item is ever stored. Bins are encrypted bits under the
// CPs' joint ElGamal key. The protocol computes |⋃ᵢ Iᵢ| + noise:
//
//  1. DCs send encrypted bit tables; the TS homomorphically sums them,
//     turning per-bin sums into an OR in the exponent.
//  2. Each CP in turn appends fair-coin noise ciphertexts (with
//     Cramer–Damgård–Schoenmakers proofs they encrypt bits), then runs
//     the streaming verifiable shuffle: the vector is arranged as a
//     grid of ShuffleBlockElems-element rows and permuted in
//     ShufflePasses alternating passes (contiguous row blocks, then
//     column groups — a transpose in emission order). Every block is
//     independently permuted, re-randomized, and proven with its own
//     cut-and-choose argument whose shadows are hash-committed before
//     the challenge exists and whose challenge bits come from a
//     Fiat–Shamir transcript over all block commitments of the stage
//     (elgamal.ShuffleTranscript). Later passes re-stream the spilled
//     intermediate in the new block order; the TS checks the re-stream
//     against the previous pass's per-block hashes (pass-continuity),
//     so the claimed input can never diverge from the verified
//     intermediate. Final-pass blocks are exponent-blinded
//     (Chaum–Pedersen proofs, verified per block) and forwarded while
//     later blocks are still in flight, so only empty-vs-non-empty
//     survives, nobody can link bins, and no party ever holds more
//     than O(block·rounds) ciphertexts.
//  3. The CPs jointly decrypt, streamed: the TS re-streams the spilled
//     final vector per chunk to every CP, verifies each share chunk's
//     proofs on arrival, and recovers and counts plaintexts chunk by
//     chunk (behind the barrier that all mix verification finished).
//
// The reported value is occupied-bins + Binomial(k·|CPs|, ½); the
// estimator in internal/stats removes the noise mean and inverts hash
// collisions to recover the distinct count with an exact CI (§3.3).
// Privacy holds if at least one CP is honest; correctness is enforced
// against all CPs by the attached proofs.
//
// # Key types
//
//   - Config: one round's parameters, including the MinDCs quorum
//     floor and the engine's Recover callback for churn tolerance.
//   - Tally: the TS role — chunk-pipelined relay and verifier; it
//     holds no decryption capability and never sees an unencrypted
//     bin.
//   - DC / CP: the party roles, each speaking over one wire.Messenger.
//   - Result: the round outcome, with AbsentDCs annotating degraded
//     coverage.
//
// # Invariants
//
//   - Every vector phase travels as a header plus bounded chunks or
//     blocks; no phase of the CP chain holds a whole vector of parsed
//     ciphertexts. Inter-pass shuffle vectors, the pre-decrypt final
//     vector, the TS's combined gather table, and the tolerant flow's
//     per-DC table buffers all live as encoded bytes in unlinked
//     temp-file spills (internal/spill, -spill-dir), so TS residency
//     is O(chunk) end to end — a spill read failure mid-re-stream
//     latches the round failer and aborts cleanly.
//   - The tally's per-chunk verification and combination (noise bit
//     proofs, blind DLEQs, share RLCs, homomorphic merges, recovery)
//     runs on bounded ordered worker pools (internal/parallel) sized
//     from GOMAXPROCS; results apply in submission order, so wire
//     order and the decrypt barrier are unchanged. Only the shuffle
//     transcript itself is sequential: each block's Fiat–Shamir
//     challenge binds every block before it.
//   - Shuffle soundness is per block: a cheating block survives one
//     argument with probability 2^-ShuffleProofRounds, and a stage
//     makes blocks·passes attempts (union bound) — size proof rounds
//     to the table, not just to 2^-k.
//   - Decryption never starts before every CP's verification (block
//     arguments, pass continuity, blind proofs) has finished; blinded
//     blocks forwarded early are semantically secure ciphertexts, so a
//     late verification failure still aborts the round before any
//     share is produced.
//   - A round may complete without a DC (reduced coverage, annotated)
//     but never without a CP: the joint key is an n-of-n threshold.
//   - A DC's upload can be restarted on a rejoined session until its
//     table completes: the tolerant flow buffers each table privately
//     and merges it into the shared combination only as a whole, so a
//     DC declared absent contributed nothing — Result.AbsentDCs is an
//     exact coverage boundary, never "partially included".
package psc
