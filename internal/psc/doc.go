// Package psc implements the Private Set-Union Cardinality protocol
// (Fenske, Mani, Johnson, Sherr — CCS 2017) with the paper's extensions
// (§3.1): a tally server coordinating the data collectors (DCs) and
// computation parties (CPs), and ingestion of PrivCount events from
// instrumented relays.
//
// Each DC maintains an oblivious hash table: observed items (client
// IPs, domains, onion addresses) are hashed into bins and immediately
// discarded — no item is ever stored. Bins are encrypted bits under the
// CPs' joint ElGamal key. The protocol computes |⋃ᵢ Iᵢ| + noise:
//
//  1. DCs send encrypted bit tables; the TS homomorphically sums them,
//     turning per-bin sums into an OR in the exponent.
//  2. Each CP in turn appends fair-coin noise ciphertexts (with
//     Cramer–Damgård–Schoenmakers proofs they encrypt bits), shuffles
//     and re-randomizes the batch (cut-and-choose verifiable shuffle),
//     and exponent-blinds every ciphertext (Chaum–Pedersen proofs), so
//     only empty-vs-non-empty survives and nobody can link bins.
//  3. The CPs jointly decrypt (proving every decryption share); the TS
//     counts non-identity plaintexts.
//
// The reported value is occupied-bins + Binomial(k·|CPs|, ½); the
// estimator in internal/stats removes the noise mean and inverts hash
// collisions to recover the distinct count with an exact CI (§3.3).
// Privacy holds if at least one CP is honest; correctness is enforced
// against all CPs by the attached proofs.
//
// # Key types
//
//   - Config: one round's parameters, including the MinDCs quorum
//     floor and the engine's Recover callback for churn tolerance.
//   - Tally: the TS role — chunk-pipelined relay and verifier; it
//     holds no decryption capability and never sees an unencrypted
//     bin.
//   - DC / CP: the party roles, each speaking over one wire.Messenger.
//   - Result: the round outcome, with AbsentDCs annotating degraded
//     coverage.
//
// # Invariants
//
//   - Every vector phase travels as a header plus bounded chunks; the
//     one whole-vector barrier is the verifiable shuffle, whose proof
//     must cover the entire permuted batch.
//   - A round may complete without a DC (reduced coverage, annotated)
//     but never without a CP: the joint key is an n-of-n threshold.
//   - A DC's upload can be restarted on a rejoined session until its
//     table completes: the tolerant flow buffers each table privately
//     and merges it into the shared combination only as a whole, so a
//     DC declared absent contributed nothing — Result.AbsentDCs is an
//     exact coverage boundary, never "partially included".
package psc
