package psc

// BenchmarkPSCRound runs one complete PSC round — DC table encryption,
// homomorphic combination, the full CP mixing pipeline (noise, shuffle,
// blind, with and without proofs), joint verified decryption — over
// in-memory pipes and over TCP loopback. The pipe variants are the
// end-to-end canary for the group-core batching; the tcp variants add
// real sockets so transport-layer regressions (framing, chunking, flow
// control) show up in `make bench-smoke` too.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/wire"
)

// connPair hands out connected (tally-side, party-side) messengers.
type connPair func() (wire.Messenger, wire.Messenger)

// pipePair builds in-memory pairs.
func pipePair(b *testing.B) (connPair, func()) {
	return func() (wire.Messenger, wire.Messenger) {
		ts, party := wire.Pipe()
		return ts, party
	}, func() {}
}

// tcpPair builds loopback TCP pairs through one listener.
func tcpPair(b *testing.B) (connPair, func()) {
	return tcpPairOpts(b)
}

// tcpPairOpts builds loopback TCP pairs with connection options applied
// to both ends — the harness for the flow-control window sweep.
func tcpPairOpts(b *testing.B, opts ...wire.Option) (connPair, func()) {
	ln, err := wire.Listen("127.0.0.1:0", nil, opts...)
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan *wire.Conn, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	return func() (wire.Messenger, wire.Messenger) {
		party, err := wire.Dial(ln.Addr().String(), nil, 5*time.Second, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return <-accepted, party
	}, func() { ln.Close() }
}

// samplePeakHeap polls the live heap until stop closes and reports the
// peak as a benchmark metric — the residency measurement the streaming
// shuffle exists for (total B/op says how much was allocated; this says
// how much had to be resident at once, across all in-process parties).
func samplePeakHeap(b *testing.B) (stop func()) {
	done := make(chan struct{})
	var peak int64
	go func() {
		var ms runtime.MemStats
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if h := int64(ms.HeapAlloc); h > atomic.LoadInt64(&peak) {
					atomic.StoreInt64(&peak, h)
				}
			}
		}
	}()
	return func() {
		close(done)
		b.ReportMetric(float64(atomic.LoadInt64(&peak))/(1<<20), "peak-heap-MB")
	}
}

func runBenchRound(b *testing.B, cfg Config, items int, mk connPair) {
	tally, err := NewTally(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var tsConns []wire.Messenger
	var dcs []*DC
	var wg sync.WaitGroup
	for i := 0; i < cfg.NumCPs; i++ {
		ts, side := mk()
		tsConns = append(tsConns, ts)
		cp := NewCP(fmt.Sprintf("cp%d", i), side, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cp.Serve(); err != nil {
				b.Error(err)
			}
		}()
	}
	var setup sync.WaitGroup
	for i := 0; i < cfg.NumDCs; i++ {
		ts, side := mk()
		tsConns = append(tsConns, ts)
		dc := NewDC(fmt.Sprintf("dc%d", i), side)
		dcs = append(dcs, dc)
		setup.Add(1)
		go func() {
			defer setup.Done()
			if err := dc.Setup(); err != nil {
				b.Error(err)
			}
		}()
	}
	done := make(chan error, 1)
	var res Result
	go func() {
		r, err := tally.Run(tsConns)
		res = r
		done <- err
	}()
	setup.Wait()
	for d, dc := range dcs {
		for k := 0; k < items; k++ {
			if err := dc.Observe(fmt.Sprintf("item-%d-%d", d, k)); err != nil {
				b.Fatal(err)
			}
		}
		if err := dc.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	for _, m := range tsConns {
		m.Close()
	}
	if res.Bins != cfg.Bins {
		b.Fatalf("unexpected result: %+v", res)
	}
}

// benchWANStream pushes total bytes through one muxed stream whose
// connection is shaped at both ends by the netem profile p — the bulk
// table-upload phase of a WAN round, isolated from crypto cost so the
// flow-control window is the only variable. Goodput is reported as
// xput-MB/s; with a static window it is bounded by window/RTT, with
// the adaptive window it should approach the emulated link rate.
func benchWANStream(b *testing.B, p netem.Profile, total int, opts ...wire.Option) {
	const chunk = 32 << 10
	payload := make([]byte, chunk)
	var secs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca, cb := netem.Pipe(p)
		party := wire.NewSession(wire.NewConn(ca, opts...), true)
		ts := wire.NewSession(wire.NewConn(cb, opts...), false)
		st, err := party.Open(uint64(i)+1, "table-upload")
		if err != nil {
			b.Fatal(err)
		}
		recvErr := make(chan error, 1)
		start := time.Now()
		go func() {
			tst, err := ts.Accept()
			if err != nil {
				recvErr <- err
				return
			}
			for got := 0; got < total; {
				f, err := tst.Recv()
				if err != nil {
					recvErr <- err
					return
				}
				got += len(f.Payload)
			}
			recvErr <- nil
		}()
		for sent := 0; sent < total; sent += chunk {
			if err := st.SendFrame(wire.Frame{Kind: "table", Payload: payload}); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-recvErr; err != nil {
			b.Fatal(err)
		}
		secs += time.Since(start).Seconds()
		party.Close()
		ts.Close()
	}
	b.SetBytes(int64(total))
	b.ReportMetric(float64(total)*float64(b.N)/(1<<20)/secs, "xput-MB/s")
}

func benchRound(b *testing.B, bins, noisePerCP, proofRounds, items int,
	transport func(*testing.B) (connPair, func())) {
	cfg := Config{
		Round:              1,
		Bins:               bins,
		NoisePerCP:         noisePerCP,
		ShuffleProofRounds: proofRounds,
		NumDCs:             2,
		NumCPs:             2,
	}
	benchRoundCfg(b, cfg, items, transport)
}

func benchRoundCfg(b *testing.B, cfg Config, items int, transport func(*testing.B) (connPair, func())) {
	mk, cleanup := transport(b)
	defer cleanup()
	stop := samplePeakHeap(b)
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchRound(b, cfg, items, mk)
	}
}

func BenchmarkPSCRound(b *testing.B) {
	b.Run("verified/bins-512", func(b *testing.B) {
		benchRound(b, 512, 64, 1, 200, pipePair)
	})
	b.Run("honest/bins-512", func(b *testing.B) {
		benchRound(b, 512, 64, 0, 200, pipePair)
	})
	b.Run("verified/bins-2048", func(b *testing.B) {
		benchRound(b, 2048, 128, 1, 800, pipePair)
	})
	b.Run("tcp/bins-512", func(b *testing.B) {
		benchRound(b, 512, 64, 1, 200, tcpPair)
	})
	b.Run("tcp/bins-2048", func(b *testing.B) {
		benchRound(b, 2048, 128, 1, 800, tcpPair)
	})
	// The table size the whole-vector shuffle could not reach: 2¹⁶
	// bins, verified, streaming block-wise. Gated on -short so quick
	// local smoke runs can skip the multi-minute variant; CI's
	// bench-smoke runs it.
	b.Run("stream/bins-65536", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping 2^16-bin round in -short mode")
		}
		benchRound(b, 65536, 128, 1, 4000, pipePair)
	})
	// WAN arms: a 2^18-bin table of ciphertexts (~32 MB) uploaded over
	// the wan-tor profile (300 ms one-way, 5 MB/s, 0.1% loss — the
	// tor-relay-grade path). The static 1 MiB window is RTT-bound at
	// ~1.7 MB/s on this path; the adaptive window must grow to the
	// bandwidth-delay product and at least double that goodput. Gated
	// on -short (tens of seconds of emulated wall clock each); `make
	// bench-wan` runs them.
	wanTor, _ := netem.Lookup("wan-tor")
	b.Run("wan-tor/static-win-1m", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping WAN-emulated arm in -short mode")
		}
		benchWANStream(b, wanTor, 32<<20, wire.WithWindow(1<<20))
	})
	b.Run("wan-tor/adaptive", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping WAN-emulated arm in -short mode")
		}
		benchWANStream(b, wanTor, 32<<20, wire.WithWindow(1<<20), wire.WithAdaptiveWindow(0))
	})
	// The clean-continental path: higher bandwidth, modest latency. The
	// adaptive window has to push well past the static baseline here
	// too — its BDP is ~4 MB.
	b.Run("wan-good/adaptive", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping WAN-emulated arm in -short mode")
		}
		wanGood, _ := netem.Lookup("wan-good")
		benchWANStream(b, wanGood, 64<<20, wire.WithWindow(1<<20), wire.WithAdaptiveWindow(0))
	})
	// The million-bin regime this PR targets: 2¹⁸ bins, verified,
	// gather table and per-DC buffers on spill storage, verify/combine
	// sharded across the worker plane. peak-heap-MB is the acceptance
	// metric — the TS must stay O(chunk) resident while the table is
	// ~70 MB of ciphertexts per party.
	b.Run("verified/stream/bins-262144", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping 2^18-bin round in -short mode")
		}
		benchRound(b, 262144, 128, 1, 8000, pipePair)
	})
}

// BenchmarkPSCRoundCores sweeps GOMAXPROCS over the 2¹⁶-bin verified
// round: the sharded verify/combine plane sizes its pools from
// GOMAXPROCS at round start, so this measures how the tally scales
// with cores (the shuffle-transcript verification stays sequential by
// design — Fiat-Shamir order — so scaling saturates below linear).
// On a single-vCPU host every arm runs the same one-core schedule;
// the sweep still pins pool sizing to the knob, it just cannot show
// speedup there.
func BenchmarkPSCRoundCores(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping core sweep in -short mode")
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("gomaxprocs-%d/bins-65536", n), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(n)
			defer runtime.GOMAXPROCS(prev)
			benchRound(b, 65536, 128, 1, 4000, pipePair)
		})
	}
}

// BenchmarkPSCRoundWindow sweeps the per-stream flow-control window of
// a TCP round — the ROADMAP's WAN-tuning harness. Over loopback the
// differences are small; over real latency the window bounds throughput
// directly (one window in flight per stream).
func BenchmarkPSCRoundWindow(b *testing.B) {
	for _, win := range []int{256 << 10, 512 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("win-%dk", win>>10), func(b *testing.B) {
			cfg := Config{Round: 1, Bins: 2048, NoisePerCP: 128, ShuffleProofRounds: 1, NumDCs: 2, NumCPs: 2}
			benchRoundCfg(b, cfg, 800, func(b *testing.B) (connPair, func()) {
				return tcpPairOpts(b, wire.WithWindow(win))
			})
		})
	}
}
