package psc

// BenchmarkPSCRound runs one complete PSC round — DC table encryption,
// homomorphic combination, the full CP mixing pipeline (noise, shuffle,
// blind, with and without proofs), joint verified decryption — over
// in-memory pipes and over TCP loopback. The pipe variants are the
// end-to-end canary for the group-core batching; the tcp variants add
// real sockets so transport-layer regressions (framing, chunking, flow
// control) show up in `make bench-smoke` too.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// connPair hands out connected (tally-side, party-side) messengers.
type connPair func() (wire.Messenger, wire.Messenger)

// pipePair builds in-memory pairs.
func pipePair(b *testing.B) (connPair, func()) {
	return func() (wire.Messenger, wire.Messenger) {
		ts, party := wire.Pipe()
		return ts, party
	}, func() {}
}

// tcpPair builds loopback TCP pairs through one listener.
func tcpPair(b *testing.B) (connPair, func()) {
	ln, err := wire.Listen("127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan *wire.Conn, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	return func() (wire.Messenger, wire.Messenger) {
		party, err := wire.Dial(ln.Addr().String(), nil, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		return <-accepted, party
	}, func() { ln.Close() }
}

func runBenchRound(b *testing.B, cfg Config, items int, mk connPair) {
	tally, err := NewTally(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var tsConns []wire.Messenger
	var dcs []*DC
	var wg sync.WaitGroup
	for i := 0; i < cfg.NumCPs; i++ {
		ts, side := mk()
		tsConns = append(tsConns, ts)
		cp := NewCP(fmt.Sprintf("cp%d", i), side, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cp.Serve(); err != nil {
				b.Error(err)
			}
		}()
	}
	var setup sync.WaitGroup
	for i := 0; i < cfg.NumDCs; i++ {
		ts, side := mk()
		tsConns = append(tsConns, ts)
		dc := NewDC(fmt.Sprintf("dc%d", i), side)
		dcs = append(dcs, dc)
		setup.Add(1)
		go func() {
			defer setup.Done()
			if err := dc.Setup(); err != nil {
				b.Error(err)
			}
		}()
	}
	done := make(chan error, 1)
	var res Result
	go func() {
		r, err := tally.Run(tsConns)
		res = r
		done <- err
	}()
	setup.Wait()
	for d, dc := range dcs {
		for k := 0; k < items; k++ {
			if err := dc.Observe(fmt.Sprintf("item-%d-%d", d, k)); err != nil {
				b.Fatal(err)
			}
		}
		if err := dc.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	for _, m := range tsConns {
		m.Close()
	}
	if res.Bins != cfg.Bins {
		b.Fatalf("unexpected result: %+v", res)
	}
}

func benchRound(b *testing.B, bins, noisePerCP, proofRounds, items int,
	transport func(*testing.B) (connPair, func())) {
	cfg := Config{
		Round:              1,
		Bins:               bins,
		NoisePerCP:         noisePerCP,
		ShuffleProofRounds: proofRounds,
		NumDCs:             2,
		NumCPs:             2,
	}
	mk, cleanup := transport(b)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchRound(b, cfg, items, mk)
	}
}

func BenchmarkPSCRound(b *testing.B) {
	b.Run("verified/bins-512", func(b *testing.B) {
		benchRound(b, 512, 64, 1, 200, pipePair)
	})
	b.Run("honest/bins-512", func(b *testing.B) {
		benchRound(b, 512, 64, 0, 200, pipePair)
	})
	b.Run("verified/bins-2048", func(b *testing.B) {
		benchRound(b, 2048, 128, 1, 800, pipePair)
	})
	b.Run("tcp/bins-512", func(b *testing.B) {
		benchRound(b, 512, 64, 1, 200, tcpPair)
	})
	b.Run("tcp/bins-2048", func(b *testing.B) {
		benchRound(b, 2048, 128, 1, 800, tcpPair)
	})
}
