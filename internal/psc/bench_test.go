package psc

// BenchmarkPSCRound runs one complete PSC round — DC table encryption,
// homomorphic combination, the full CP mixing pipeline (noise, shuffle,
// blind, with and without proofs), joint verified decryption — over
// in-memory pipes. It is the end-to-end canary for the group-core
// batching: the protocol spends essentially all of its time in
// internal/elgamal.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/wire"
)

func runBenchRound(b *testing.B, bins, noisePerCP, proofRounds, items int) {
	cfg := Config{
		Round:              1,
		Bins:               bins,
		NoisePerCP:         noisePerCP,
		ShuffleProofRounds: proofRounds,
		NumDCs:             2,
		NumCPs:             2,
	}
	tally, err := NewTally(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var tsConns []*wire.Conn
	var dcs []*DC
	var wg sync.WaitGroup
	for i := 0; i < cfg.NumCPs; i++ {
		ts, side := wire.Pipe()
		tsConns = append(tsConns, ts)
		cp := NewCP(fmt.Sprintf("cp%d", i), side, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cp.Serve(); err != nil {
				b.Error(err)
			}
		}()
	}
	var setup sync.WaitGroup
	for i := 0; i < cfg.NumDCs; i++ {
		ts, side := wire.Pipe()
		tsConns = append(tsConns, ts)
		dc := NewDC(fmt.Sprintf("dc%d", i), side)
		dcs = append(dcs, dc)
		setup.Add(1)
		go func() {
			defer setup.Done()
			if err := dc.Setup(); err != nil {
				b.Error(err)
			}
		}()
	}
	done := make(chan error, 1)
	var res Result
	go func() {
		r, err := tally.Run(tsConns)
		res = r
		done <- err
	}()
	setup.Wait()
	for d, dc := range dcs {
		for k := 0; k < items; k++ {
			if err := dc.Observe(fmt.Sprintf("item-%d-%d", d, k)); err != nil {
				b.Fatal(err)
			}
		}
		if err := dc.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	wg.Wait()
	if res.Bins != bins {
		b.Fatalf("unexpected result: %+v", res)
	}
}

func BenchmarkPSCRound(b *testing.B) {
	b.Run("verified/bins-512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchRound(b, 512, 64, 1, 200)
		}
	})
	b.Run("honest/bins-512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchRound(b, 512, 64, 0, 200)
		}
	})
	b.Run("verified/bins-2048", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runBenchRound(b, 2048, 128, 1, 800)
		}
	})
}
