package psc

import (
	"fmt"

	"repro/internal/elgamal"
	"repro/internal/wire"
)

// DC is a PSC data collector. It keeps only a bit table: Observe hashes
// the item into a bin and discards it, so even a compromised DC holds
// no client IPs, domains, or onion addresses (§5.1: "we do not store,
// even temporarily, IP addresses since PSC uses oblivious counters").
type DC struct {
	Name string

	m        wire.Messenger
	cfg      ConfigureMsg
	jointKey elgamal.Point
	bins     []bool
	ready    bool
}

// NewDC creates a data collector speaking on m — a dedicated connection
// or one round's stream of a multiplexed session. A DC serves exactly
// one round; daemons create one per round stream.
func NewDC(name string, m wire.Messenger) *DC {
	return &DC{Name: name, m: m}
}

// Setup registers with the tally server and receives the round
// configuration (hash key, table size, joint encryption key).
func (dc *DC) Setup() error {
	if err := dc.m.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: dc.Name}); err != nil {
		return fmt.Errorf("psc dc %s: register: %w", dc.Name, err)
	}
	if err := dc.m.Expect(kindConfig, &dc.cfg); err != nil {
		return fmt.Errorf("psc dc %s: configure: %w", dc.Name, err)
	}
	if dc.cfg.Bins <= 0 {
		return fmt.Errorf("psc dc %s: configured with %d bins", dc.Name, dc.cfg.Bins)
	}
	if len(dc.cfg.HashKey) == 0 {
		return fmt.Errorf("psc dc %s: no hash key in configuration", dc.Name)
	}
	pk, _, err := elgamal.ParsePoint(dc.cfg.JointKey)
	if err != nil {
		return fmt.Errorf("psc dc %s: joint key: %w", dc.Name, err)
	}
	dc.jointKey = pk
	elgamal.Precompute(dc.jointKey)
	dc.bins = make([]bool, dc.cfg.Bins)
	dc.ready = true
	return nil
}

// Round reports the round this DC is configured for (zero before Setup).
func (dc *DC) Round() uint64 { return dc.cfg.Round }

// Observe records that an item was seen. Only the item's bin survives.
func (dc *DC) Observe(item string) error {
	if !dc.ready {
		return fmt.Errorf("psc dc %s: observe before setup", dc.Name)
	}
	dc.bins[binOf(dc.cfg.HashKey, item, dc.cfg.Bins)] = true
	return nil
}

// Occupied reports how many bins are set (used by tests; a real DC
// never reveals this).
func (dc *DC) Occupied() int {
	n := 0
	for _, b := range dc.bins {
		if b {
			n++
		}
	}
	return n
}

// Finish encrypts the bit table under the joint key and streams it to
// the tally server chunk by chunk, then clears the table. Only one
// chunk of ciphertexts is ever resident, so a DC's memory is bounded by
// the chunk size however large the table: the upload pipeline encrypts
// chunk k+1 while chunk k is on the wire.
func (dc *DC) Finish() error {
	if !dc.ready {
		return fmt.Errorf("psc dc %s: finish before setup", dc.Name)
	}
	dc.ready = false
	if err := dc.m.Send(kindTable, VectorHeader{From: dc.Name, Round: dc.cfg.Round, N: dc.cfg.Bins}); err != nil {
		return err
	}
	err := forEachChunk(len(dc.bins), dc.cfg.ChunkElems, func(off, end int) error {
		cts, _ := elgamal.BatchEncryptBits(dc.jointKey, dc.bins[off:end])
		return dc.m.Send(kindChunk, ChunkMsg{Off: off, Count: end - off, Data: encodeVector(cts)})
	})
	if err != nil {
		return err
	}
	for i := range dc.bins {
		dc.bins[i] = false
	}
	return nil
}
