package psc

import (
	"fmt"

	"repro/internal/elgamal"
	"repro/internal/wire"
)

// DC is a PSC data collector. It keeps only a bit table: Observe hashes
// the item into a bin and discards it, so even a compromised DC holds
// no client IPs, domains, or onion addresses (§5.1: "we do not store,
// even temporarily, IP addresses since PSC uses oblivious counters").
type DC struct {
	Name string

	conn     *wire.Conn
	cfg      ConfigureMsg
	jointKey elgamal.Point
	bins     []bool
	ready    bool
}

// NewDC creates a data collector speaking on conn.
func NewDC(name string, conn *wire.Conn) *DC {
	return &DC{Name: name, conn: conn}
}

// Setup registers with the tally server and receives the round
// configuration (hash key, table size, joint encryption key).
func (dc *DC) Setup() error {
	if err := dc.conn.Send(kindRegister, RegisterMsg{Role: RoleDC, Name: dc.Name}); err != nil {
		return fmt.Errorf("psc dc %s: register: %w", dc.Name, err)
	}
	if err := dc.conn.Expect(kindConfig, &dc.cfg); err != nil {
		return fmt.Errorf("psc dc %s: configure: %w", dc.Name, err)
	}
	if dc.cfg.Bins <= 0 {
		return fmt.Errorf("psc dc %s: configured with %d bins", dc.Name, dc.cfg.Bins)
	}
	if len(dc.cfg.HashKey) == 0 {
		return fmt.Errorf("psc dc %s: no hash key in configuration", dc.Name)
	}
	pk, _, err := elgamal.ParsePoint(dc.cfg.JointKey)
	if err != nil {
		return fmt.Errorf("psc dc %s: joint key: %w", dc.Name, err)
	}
	dc.jointKey = pk
	elgamal.Precompute(dc.jointKey)
	dc.bins = make([]bool, dc.cfg.Bins)
	dc.ready = true
	return nil
}

// Observe records that an item was seen. Only the item's bin survives.
func (dc *DC) Observe(item string) error {
	if !dc.ready {
		return fmt.Errorf("psc dc %s: observe before setup", dc.Name)
	}
	dc.bins[binOf(dc.cfg.HashKey, item, dc.cfg.Bins)] = true
	return nil
}

// Occupied reports how many bins are set (used by tests; a real DC
// never reveals this).
func (dc *DC) Occupied() int {
	n := 0
	for _, b := range dc.bins {
		if b {
			n++
		}
	}
	return n
}

// Finish encrypts the bit table under the joint key and sends it to the
// tally server, then clears the table.
func (dc *DC) Finish() error {
	if !dc.ready {
		return fmt.Errorf("psc dc %s: finish before setup", dc.Name)
	}
	dc.ready = false
	vec, _ := elgamal.BatchEncryptBits(dc.jointKey, dc.bins)
	for i := range dc.bins {
		dc.bins[i] = false
	}
	return dc.conn.Send(kindTable, TableMsg{
		From:   dc.Name,
		Round:  dc.cfg.Round,
		Vector: encodeVector(vec),
	})
}
