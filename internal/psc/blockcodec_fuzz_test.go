package psc

import (
	"testing"

	"repro/internal/elgamal"
	"repro/internal/wire"
)

// Fuzzing for the block-proof codec: whatever bytes a malicious or
// confused CP ships as shuffled blocks, shadow openings, or re-streamed
// feeds, the tally must get a clean error — never a panic or a bogus
// acceptance of malformed structure.

// FuzzBlockOutCodec mutates a well-formed BlockOutMsg payload.
func FuzzBlockOutCodec(f *testing.F) {
	pk := pkForTest()
	cts := encryptBits(pk, 3)
	good := BlockOutMsg{Pass: 1, Block: 0, Count: 3, Data: encodeVector(cts), Commits: [][]byte{make([]byte, 32), make([]byte, 32)}}
	seed, err := wire.EncodePayload(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, 3, 2)
	f.Add([]byte{}, 0, 0)
	f.Add([]byte{0xff, 0x00, 0x41}, 1, 1)
	f.Fuzz(func(t *testing.T, payload []byte, count, rounds int) {
		if count < 0 || count > 64 || rounds < 0 || rounds > 16 {
			return
		}
		var msg BlockOutMsg
		if err := wire.DecodePayload(payload, &msg); err != nil {
			return
		}
		if len(msg.Data) > 1<<16 {
			return
		}
		outB, commits, err := parseBlockOut(msg, msg.Pass, msg.Block, count, rounds)
		if err != nil {
			return
		}
		// Structural acceptance must mean structural validity.
		if len(outB) != count || len(commits) != rounds {
			t.Fatalf("parseBlockOut accepted %d elements / %d commits, want %d / %d", len(outB), len(commits), count, rounds)
		}
		for _, c := range outB {
			if !c.IsValid() {
				t.Fatal("parseBlockOut accepted an invalid ciphertext")
			}
		}
	})
}

// FuzzBlockShadowCodec mutates a well-formed BlockShadowMsg payload —
// the frame carrying commitment openings (permutation and randomizers).
func FuzzBlockShadowCodec(f *testing.F) {
	pk := pkForTest()
	in := encryptBits(pk, 3)
	out, w := elgamal.Shuffle(pk, in)
	tr := elgamal.NewShuffleTranscript(pk, 3, 3, 1, 1)
	proof, err := elgamal.ProveShuffleBlock(tr, 1, 0, pk, in, out, w, 1)
	if err != nil {
		f.Fatal(err)
	}
	good := BlockShadowMsg{
		Pass: 1, Block: 0, Round: 0, Count: 3,
		Data:     encodeVector(proof.Rounds[0].Shadow),
		OpenPerm: proof.Rounds[0].OpenPerm,
		OpenRand: [][]byte{proof.Rounds[0].OpenRand[0].Bytes(), proof.Rounds[0].OpenRand[1].Bytes(), proof.Rounds[0].OpenRand[2].Bytes()},
	}
	seed, err := wire.EncodePayload(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, 3)
	f.Add([]byte{}, 0)
	f.Add([]byte{0x01, 0x02, 0x03, 0x04}, 2)
	f.Fuzz(func(t *testing.T, payload []byte, count int) {
		if count < 0 || count > 64 {
			return
		}
		var msg BlockShadowMsg
		if err := wire.DecodePayload(payload, &msg); err != nil {
			return
		}
		if len(msg.Data) > 1<<16 || len(msg.OpenPerm) > 1<<10 || len(msg.OpenRand) > 1<<10 {
			return
		}
		round, err := parseBlockShadow(msg, msg.Pass, msg.Block, msg.Round, count)
		if err != nil {
			return
		}
		if len(round.Shadow) != count || len(round.OpenPerm) != count || len(round.OpenRand) != count {
			t.Fatal("parseBlockShadow accepted mismatched sizes")
		}
		for _, r := range round.OpenRand {
			if r == nil || r.Sign() < 0 {
				t.Fatal("parseBlockShadow accepted a bad randomizer")
			}
		}
	})
}

// FuzzBlockFeedCodec mutates a re-streamed input block frame.
func FuzzBlockFeedCodec(f *testing.F) {
	pk := pkForTest()
	cts := encryptBits(pk, 2)
	good := BlockFeedMsg{Pass: 2, Block: 1, Count: 2, Data: encodeVector(cts)}
	seed, err := wire.EncodePayload(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, 2)
	f.Add([]byte(nil), 0)
	f.Fuzz(func(t *testing.T, payload []byte, count int) {
		if count < 0 || count > 64 {
			return
		}
		var msg BlockFeedMsg
		if err := wire.DecodePayload(payload, &msg); err != nil {
			return
		}
		if len(msg.Data) > 1<<16 {
			return
		}
		inB, err := parseBlockFeed(msg, msg.Pass, msg.Block, count)
		if err != nil {
			return
		}
		if len(inB) != count {
			t.Fatal("parseBlockFeed accepted a short block")
		}
	})
}

// TestBlockCodecRejectsMalformed pins the specific malformed shapes the
// fuzzers explore: they must error, not panic, and never be accepted.
func TestBlockCodecRejectsMalformed(t *testing.T) {
	pk := pkForTest()
	cts := encryptBits(pk, 3)
	data := encodeVector(cts)

	cases := []BlockOutMsg{
		{Pass: 2, Block: 0, Count: 3, Data: data},                                              // wrong pass
		{Pass: 1, Block: 1, Count: 3, Data: data},                                              // wrong block
		{Pass: 1, Block: 0, Count: 2, Data: data},                                              // count understates data
		{Pass: 1, Block: 0, Count: 3, Data: data[:10]},                                         // truncated ciphertexts
		{Pass: 1, Block: 0, Count: 3, Data: data, Commits: [][]byte{make([]byte, 31), {}, {}}}, // short commitment
		{Pass: 1, Block: 0, Count: 3, Data: data, Commits: [][]byte{make([]byte, 32)}},         // missing commitments
	}
	for i, msg := range cases {
		if _, _, err := parseBlockOut(msg, 1, 0, 3, 3); err == nil {
			t.Errorf("malformed BlockOutMsg %d accepted", i)
		}
	}

	shadowCases := []BlockShadowMsg{
		{Pass: 1, Block: 0, Round: 1, Count: 3, Data: data, OpenPerm: []int{0, 1, 2}, OpenRand: [][]byte{{1}, {2}, {3}}},              // wrong round
		{Pass: 1, Block: 0, Round: 0, Count: 3, Data: data, OpenPerm: []int{0, 1}, OpenRand: [][]byte{{1}, {2}, {3}}},                 // short perm
		{Pass: 1, Block: 0, Round: 0, Count: 3, Data: data, OpenPerm: []int{0, 1, 2}, OpenRand: [][]byte{{1}, {2}}},                   // short rands
		{Pass: 1, Block: 0, Round: 0, Count: 3, Data: data, OpenPerm: []int{0, 1, 2}, OpenRand: [][]byte{{1}, {2}, make([]byte, 40)}}, // oversized rand
		{Pass: 1, Block: 0, Round: 0, Count: 3, Data: []byte{4, 4, 4}, OpenPerm: []int{0, 1, 2}, OpenRand: [][]byte{{1}, {2}, {3}}},   // garbage points
	}
	for i, msg := range shadowCases {
		if _, err := parseBlockShadow(msg, 1, 0, 0, 3); err == nil {
			t.Errorf("malformed BlockShadowMsg %d accepted", i)
		}
	}

	if _, err := parseBlockFeed(BlockFeedMsg{Pass: 2, Block: 0, Count: 3, Data: data[:7]}, 2, 0, 3); err == nil {
		t.Error("truncated BlockFeedMsg accepted")
	}
}
