package psc

import (
	"crypto/rand"
	"fmt"
	"sort"
	"sync"

	"repro/internal/elgamal"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/wire"
)

// gatherFeedTestHook, when set by a test, runs on the completed gather
// store just before the mix feeder starts re-streaming it — the
// injection point for spill-failure tests.
var gatherFeedTestHook func(*gatherStore)

// Tally is the PSC tally server, the coordination role the paper added
// to the original design (§3.1: "we slightly modify the original PSC
// design to include a TS to coordinate the actions of the DCs and
// CPs"). It relays and verifies; it holds no decryption capability and
// never sees an unencrypted bin.
//
// Every vector phase is chunked and pipelined: DC tables are combined
// as their chunks arrive (strict flow) or buffered per DC and merged
// whole (tolerant flow, so an absent DC contributes nothing), each
// CP's verified blinded blocks are forwarded to the next CP while the
// upstream CP is still mixing, and decryption shares are verified and
// recovered per chunk from all CPs concurrently. The shuffle itself
// streams block-wise (grid passes with per-block cut-and-choose
// arguments), so no phase of the CP chain holds a whole vector of
// parsed ciphertexts; the only whole-vector state is the spilled
// encoding of the final batch awaiting the pre-decrypt verification
// barrier.
type Tally struct {
	cfg Config
}

// NewTally validates the configuration and returns a tally server.
func NewTally(cfg Config) (*Tally, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tally{cfg: cfg}, nil
}

// vchunk is one in-flight slice of a vector moving through the CP
// pipeline.
type vchunk struct {
	off int
	cts []elgamal.Ciphertext
}

// failer latches the first error of a round and wakes every phase.
type failer struct {
	once sync.Once
	err  error
	ch   chan struct{}
}

func newFailer() *failer { return &failer{ch: make(chan struct{})} }

func (f *failer) fail(err error) {
	f.once.Do(func() {
		f.err = err
		close(f.ch)
	})
}

// latched returns the failure if one has been recorded.
func (f *failer) latched() error {
	select {
	case <-f.ch:
		return f.err
	default:
		return nil
	}
}

// roundParties is the outcome of the registration/configuration/table
// phase, everything the shared mixing and decryption tail needs.
type roundParties struct {
	cpM     map[string]wire.Messenger
	cpKeys  map[string]elgamal.Point
	cpNames []string
	joint   elgamal.Point
	absent  []string
}

// Run executes one round over established messengers (one per party —
// dedicated connections or per-round streams of multiplexed sessions).
// Without cfg.Recover any party failure fails the round and the
// messenger order is free; with it, the slice must be CPs first (see
// Config.Recover) and DC failures degrade the round down to the MinDCs
// quorum floor.
func (t *Tally) Run(parties []wire.Messenger) (Result, error) {
	if len(parties) != t.cfg.NumDCs+t.cfg.NumCPs {
		return Result{}, fmt.Errorf("psc ts: have %d connections, want %d DCs + %d CPs",
			len(parties), t.cfg.NumDCs, t.cfg.NumCPs)
	}

	// Collect encrypted tables from all DCs concurrently, combining
	// them homomorphically on the spilled gather store: per-bin
	// ciphertext sums turn into OR in the exponent, and the running
	// combination lives as encoded bytes on spill storage, not parsed
	// group elements on the heap. The strict flow merges chunks as they
	// land; the tolerant flow buffers each DC's table (also spilled)
	// and merges it once complete (see collectTableBuffered).
	gs, err := newGatherStore(t.cfg.Bins, t.cfg.ChunkElems)
	if err != nil {
		return Result{}, fmt.Errorf("psc ts: gather spill: %w", err)
	}
	var rp roundParties
	if t.cfg.Recover == nil {
		rp, err = t.gatherStrict(parties, gs)
	} else {
		rp, err = t.gatherTolerant(parties, gs)
	}
	if err != nil {
		gs.Close()
		return Result{}, err
	}
	cpNames, cpM, cpKeys, joint := rp.cpNames, rp.cpM, rp.cpKeys, rp.joint

	f := newFailer()
	chunk := chunkOf(t.cfg.ChunkElems)

	if h := gatherFeedTestHook; h != nil {
		h(gs)
	}
	// Mixing pipeline: feeder -> CP 1 -> ... -> CP k -> collector, all
	// running at once, chunked end to end. The feeder re-streams the
	// combined table from the gather spill a chunk at a time, so from
	// the first byte of the gather to the last decryption share the TS
	// holds O(chunk) parsed ciphertexts per CP stage. A spill read
	// failure latches the round error instead of wedging the pipeline.
	feed := make(chan vchunk, 2)
	go func() {
		defer close(feed)
		defer gs.Close()
		err := forEachChunk(t.cfg.Bins, chunk, func(off, end int) error {
			cts, err := gs.readRange(off, end-off)
			if err != nil {
				return fmt.Errorf("psc ts: gather spill: %w", err)
			}
			select {
			case feed <- vchunk{off: off, cts: cts}:
				return nil
			case <-f.ch:
				return f.err
			}
		})
		if err != nil {
			f.fail(err)
		}
	}()
	in := feed
	var mixWG sync.WaitGroup
	for i, n := range cpNames {
		out := make(chan vchunk, 2)
		nIn := t.cfg.Bins + i*t.cfg.NoisePerCP
		mixWG.Add(1)
		go func(name string, m wire.Messenger, nIn int, in <-chan vchunk, out chan<- vchunk) {
			defer mixWG.Done()
			t.mixCP(name, m, joint, nIn, in, out, f, chunk)
		}(n, cpM[n], nIn, in, out)
		in = out
	}
	// Collect the final blinded vector into a spill, not the heap: the
	// decryption tail re-streams it per chunk to every CP.
	finalN := t.cfg.Bins + t.cfg.NumCPs*t.cfg.NoisePerCP
	dec, err := newSpill(finalN)
	if err != nil {
		return Result{}, fmt.Errorf("psc ts: decrypt spill: %w", err)
	}
	// Closed through the locking wrapper: a failure path may return
	// while per-CP decrypt goroutines still read the spill, and they
	// must see an error, not released storage.
	src := &lockedSpill{sp: dec}
	defer src.Close()
	written := 0
	for c := range in {
		if err := dec.write(c.off, c.cts); err != nil {
			f.fail(fmt.Errorf("psc ts: decrypt spill: %w", err))
			break
		}
		written += len(c.cts)
	}
	// Decryption must not start until every CP's verification has
	// finished: the last blinded blocks are forwarded before the final
	// pass-continuity check completes, and decrypting a batch whose
	// shuffle later fails to verify would hand out shares the protocol
	// never authorized.
	mixDone := make(chan struct{})
	go func() { mixWG.Wait(); close(mixDone) }()
	select {
	case <-f.ch:
		return Result{}, f.err
	case <-mixDone:
	}
	if err := f.latched(); err != nil {
		// Both mixDone and f.ch may be ready at once; never let a
		// latched failure lose the select race.
		return Result{}, err
	}
	if written != finalN {
		return Result{}, fmt.Errorf("psc ts: mix pipeline produced %d elements, want %d", written, finalN)
	}

	// Joint decryption, streamed: every CP receives the final vector
	// chunk by chunk from the spill, its share chunks are verified on
	// arrival, and each chunk's plaintexts are recovered and counted the
	// moment all CPs have answered it — the TS never holds more than a
	// chunk of shares per CP.
	shareChans := make([]chan decShareChunk, len(cpNames))
	for i, n := range cpNames {
		shareChans[i] = make(chan decShareChunk, 2)
		go t.decryptCP(n, cpM[n], cpKeys[n], src, finalN, chunk, f, shareChans[i])
	}
	// Each chunk's plaintext recovery is independent once every CP's
	// verified shares for it are in hand, so the combine runs on its own
	// shard: the collection loop stays sequential (it merges per-CP
	// streams in chunk order) and hands each complete chunk to the pool,
	// whose results a concurrent drainer sums — an Ordered pool's
	// submitter must never be its only consumer, or the depth bound
	// wedges the loop.
	rec := parallel.NewOrdered[int](parallel.PoolSize(), 2*parallel.PoolSize(), "psc-combine")
	reported := 0
	recDone := make(chan struct{})
	go func() {
		defer close(recDone)
		for r := range rec.Out() {
			reported += r.V
		}
	}()
	err = forEachChunk(finalN, chunk, func(off, end int) error {
		cts, err := src.readRange(off, end-off)
		if err != nil {
			return fmt.Errorf("psc ts: decrypt spill: %w", err)
		}
		shares := make([][]elgamal.DecryptionShare, len(cpNames))
		for i := range shareChans {
			select {
			case sc, ok := <-shareChans[i]:
				if !ok {
					if err := f.latched(); err != nil {
						return err
					}
					return fmt.Errorf("psc ts: CP %s share stream ended early", cpNames[i])
				}
				if sc.off != off {
					return fmt.Errorf("psc ts: CP %s shares for offset %d, want %d", cpNames[i], sc.off, off)
				}
				shares[i] = sc.shares
			case <-f.ch:
				return f.err
			}
		}
		rec.Submit(func() (int, error) {
			n := 0
			for _, pt := range elgamal.RecoverBatch(cts, shares) {
				if !pt.IsIdentity() {
					n++
				}
			}
			return n, nil
		})
		return nil
	})
	rec.Close()
	<-recDone
	if err != nil {
		f.fail(err)
		return Result{}, err
	}
	if err := f.latched(); err != nil {
		return Result{}, err
	}

	return Result{
		Round:       t.cfg.Round,
		Reported:    reported,
		Bins:        t.cfg.Bins,
		NoiseTrials: t.cfg.TotalNoiseTrials(),
		AbsentDCs:   rp.absent,
	}, nil
}

// gatherStrict is the pre-churn phase driver: order-agnostic
// registration, configuration, and table collection, with any party
// failure failing the round.
func (t *Tally) gatherStrict(parties []wire.Messenger, gs *gatherStore) (roundParties, error) {
	rp := roundParties{cpM: make(map[string]wire.Messenger), cpKeys: make(map[string]elgamal.Point)}
	dcM := make(map[string]wire.Messenger)
	var dcNames []string
	for _, m := range parties {
		var reg RegisterMsg
		if err := m.Expect(kindRegister, &reg); err != nil {
			return rp, fmt.Errorf("psc ts: registration: %w", err)
		}
		switch reg.Role {
		case RoleDC:
			if _, dup := dcM[reg.Name]; dup {
				return rp, fmt.Errorf("psc ts: duplicate DC %q", reg.Name)
			}
			dcM[reg.Name] = m
			dcNames = append(dcNames, reg.Name)
		case RoleCP:
			if err := rp.addCP(reg, m); err != nil {
				return rp, err
			}
		default:
			return rp, fmt.Errorf("psc ts: unknown role %q", reg.Role)
		}
	}
	if len(dcNames) != t.cfg.NumDCs || len(rp.cpNames) != t.cfg.NumCPs {
		return rp, fmt.Errorf("psc ts: registered %d DCs and %d CPs, want %d and %d",
			len(dcNames), len(rp.cpNames), t.cfg.NumDCs, t.cfg.NumCPs)
	}
	sort.Strings(dcNames)
	cpCfg, dcCfg, err := t.buildConfigs(&rp)
	if err != nil {
		return rp, err
	}
	for _, n := range rp.cpNames {
		if err := rp.cpM[n].Send(kindConfig, cpCfg); err != nil {
			return rp, fmt.Errorf("psc ts: configure CP %s: %w", n, err)
		}
	}
	for _, n := range dcNames {
		if err := dcM[n].Send(kindConfig, dcCfg); err != nil {
			return rp, fmt.Errorf("psc ts: configure DC %s: %w", n, err)
		}
	}
	tableErrs := make(chan error, len(dcNames))
	for _, n := range dcNames {
		go func(name string, m wire.Messenger) {
			tableErrs <- t.collectTable(name, m, gs)
		}(n, dcM[n])
	}
	// Fail fast on the first error: the caller aborts the round, which
	// resets every stream and unwinds the remaining collectors (their
	// sends land in the buffered channel). Waiting for all of them here
	// would wedge the round on a stalled DC with no deadline armed.
	for range dcNames {
		if err := <-tableErrs; err != nil {
			return rp, err
		}
	}
	return rp, nil
}

// gatherTolerant is the churn-aware phase driver installed by the
// engine: CPs register positionally (all required), then each DC's
// register/configure/table exchange runs in its own goroutine with the
// engine's recovery callback deciding — per failed DC — between a
// restart on a rejoined session, a declared absence, and failing the
// round. The round proceeds only if the surviving tables meet the
// quorum floor and still cover every bin.
func (t *Tally) gatherTolerant(parties []wire.Messenger, gs *gatherStore) (roundParties, error) {
	rp := roundParties{cpM: make(map[string]wire.Messenger), cpKeys: make(map[string]elgamal.Point)}
	for i := 0; i < t.cfg.NumCPs; i++ {
		var reg RegisterMsg
		if err := parties[i].Expect(kindRegister, &reg); err != nil {
			return rp, fmt.Errorf("psc ts: registration: %w", err)
		}
		if reg.Role != RoleCP {
			return rp, fmt.Errorf("psc ts: party %d registered as %q, want %q", i, reg.Role, RoleCP)
		}
		if err := rp.addCP(reg, parties[i]); err != nil {
			return rp, err
		}
	}
	cpCfg, dcCfg, err := t.buildConfigs(&rp)
	if err != nil {
		return rp, err
	}
	for _, n := range rp.cpNames {
		if err := rp.cpM[n].Send(kindConfig, cpCfg); err != nil {
			return rp, fmt.Errorf("psc ts: configure CP %s: %w", n, err)
		}
	}

	type outcome struct {
		name   string
		absent bool
		err    error
	}
	outcomes := make(chan outcome, t.cfg.NumDCs)
	var mu sync.Mutex
	owner := make(map[string]int) // DC name -> party index, for duplicate detection across retries
	for di := 0; di < t.cfg.NumDCs; di++ {
		idx := t.cfg.NumCPs + di
		go func(idx int) {
			name, absent, err := t.runDC(idx, parties[idx], dcCfg, gs, &mu, owner)
			outcomes <- outcome{name: name, absent: absent, err: err}
		}(idx)
	}
	completed := 0
	for i := 0; i < t.cfg.NumDCs; i++ {
		o := <-outcomes
		switch {
		case o.err != nil:
			// Fail fast: the round is aborting (or a DC misbehaved past
			// what quorum tolerates). The abort resets every stream, so
			// the remaining DC goroutines unwind into the buffered
			// channel instead of wedging this loop.
			return rp, o.err
		case o.absent:
			rp.absent = append(rp.absent, o.name)
		default:
			completed++
		}
	}
	min := t.cfg.MinDCs
	if min <= 0 {
		min = t.cfg.NumDCs
	}
	if completed < min || completed < 1 {
		return rp, fmt.Errorf("psc ts: quorum lost: %d of %d DC tables arrived, need %d (absent: %v)",
			completed, t.cfg.NumDCs, min, rp.absent)
	}
	// A degraded round must still cover the whole table: with >= 1
	// complete table every bin is populated, but verify rather than
	// decrypt zero-value ciphertexts.
	if i := gs.uncovered(); i >= 0 {
		return rp, fmt.Errorf("psc ts: bin %d has no contribution after degradation", i)
	}
	sort.Strings(rp.absent)
	return rp, nil
}

// runDC drives one data collector's registration/configure/table
// exchange, retrying once on a replacement messenger when the recovery
// callback provides one. Tables are buffered per DC and merged into the
// shared combination only once complete, so a failed upload leaves no
// partial state: every failure before the table's completion is
// retryable, and a DC declared absent contributed nothing.
func (t *Tally) runDC(idx int, m wire.Messenger, dcCfg ConfigureMsg, gs *gatherStore, mu *sync.Mutex, owner map[string]int) (name string, absent bool, err error) {
	attempt := func(m wire.Messenger) (string, error) {
		var reg RegisterMsg
		if err := m.Expect(kindRegister, &reg); err != nil {
			return "", fmt.Errorf("psc ts: registration: %w", err)
		}
		if reg.Role != RoleDC {
			return reg.Name, fmt.Errorf("psc ts: party %d registered as %q, want %q", idx, reg.Role, RoleDC)
		}
		mu.Lock()
		prev, claimed := owner[reg.Name]
		if !claimed {
			owner[reg.Name] = idx
		}
		mu.Unlock()
		if claimed && prev != idx {
			return reg.Name, fmt.Errorf("psc ts: duplicate DC %q", reg.Name)
		}
		if err := m.Send(kindConfig, dcCfg); err != nil {
			return reg.Name, fmt.Errorf("psc ts: configure DC %s: %w", reg.Name, err)
		}
		return reg.Name, t.collectTableBuffered(reg.Name, m, gs)
	}

	name, err = attempt(m)
	if err == nil {
		return name, false, nil
	}
	repl, absentOK := t.cfg.Recover(idx, name, true)
	if repl != nil {
		retryName, retryErr := attempt(repl)
		if retryName != "" {
			name = retryName
		}
		if retryErr == nil {
			return name, false, nil
		}
		err = retryErr
		_, absentOK = t.cfg.Recover(idx, name, false)
	}
	if name == "" {
		name = fmt.Sprintf("dc#%d", idx-t.cfg.NumCPs)
	}
	if absentOK {
		return name, true, nil
	}
	return name, false, err
}

// addCP records one computation party's registration.
func (rp *roundParties) addCP(reg RegisterMsg, m wire.Messenger) error {
	if _, dup := rp.cpM[reg.Name]; dup {
		return fmt.Errorf("psc ts: duplicate CP %q", reg.Name)
	}
	pk, _, err := elgamal.ParsePoint(reg.PubKey)
	if err != nil {
		return fmt.Errorf("psc ts: CP %q public key: %w", reg.Name, err)
	}
	rp.cpM[reg.Name] = m
	rp.cpKeys[reg.Name] = pk
	rp.cpNames = append(rp.cpNames, reg.Name)
	return nil
}

// buildConfigs combines the CP keys into the round's joint key and
// materializes the configure messages (the DC variant carries the hash
// key, which CPs must not see). cpNames is sorted here: the mixing
// pipeline order must be deterministic.
func (t *Tally) buildConfigs(rp *roundParties) (cpCfg, dcCfg ConfigureMsg, err error) {
	sort.Strings(rp.cpNames)
	keyList := make([]elgamal.Point, 0, len(rp.cpNames))
	keyBytes := make([][]byte, 0, len(rp.cpNames))
	for _, n := range rp.cpNames {
		keyList = append(keyList, rp.cpKeys[n])
		keyBytes = append(keyBytes, rp.cpKeys[n].Bytes())
	}
	rp.joint, err = elgamal.CombineKeys(keyList...)
	if err != nil {
		return cpCfg, dcCfg, fmt.Errorf("psc ts: combine keys: %w", err)
	}
	// The verification passes multiply against the joint key for every
	// element; precompute its fixed-base table once.
	elgamal.Precompute(rp.joint)
	hashKey := make([]byte, 32)
	if _, err := rand.Read(hashKey); err != nil {
		return cpCfg, dcCfg, fmt.Errorf("psc ts: hash key: %w", err)
	}
	cpCfg = ConfigureMsg{
		Round:              t.cfg.Round,
		Bins:               t.cfg.Bins,
		NoisePerCP:         t.cfg.NoisePerCP,
		ShuffleProofRounds: t.cfg.ShuffleProofRounds,
		ShuffleBlockElems:  t.cfg.ShuffleBlockElems,
		ShufflePasses:      t.cfg.ShufflePasses,
		ChunkElems:         t.cfg.ChunkElems,
		JointKey:           rp.joint.Bytes(),
		CPKeys:             keyBytes,
	}
	dcCfg = cpCfg
	dcCfg.HashKey = hashKey
	return cpCfg, dcCfg, nil
}

// collectTable streams one DC's table into the shared combination as
// chunks arrive — the strict flow's memory-lean path, holding only the
// in-flight chunks. That is safe only because any DC failure fails
// the whole strict round: a partially merged table can never outlive
// its round as a completed result. The receive loop stays on the
// network; each chunk's point parsing and homomorphic merge runs on the
// gather shard, bounded by the pool depth, so concurrent DC streams
// decode and merge on every schedulable core.
func (t *Tally) collectTable(name string, m wire.Messenger, gs *gatherStore) error {
	var hdr VectorHeader
	if err := m.Expect(kindTable, &hdr); err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	if hdr.N != t.cfg.Bins {
		return fmt.Errorf("psc ts: DC %s sent %d bins, want %d", name, hdr.N, t.cfg.Bins)
	}
	merge := parallel.NewOrdered[struct{}](parallel.PoolSize(), 2*parallel.PoolSize(), "psc-gather")
	var mergeErr error
	mergeDone := make(chan struct{})
	go func() {
		// Drains concurrently with the receive loop so the shard's
		// depth bound throttles the loop instead of wedging it.
		defer close(mergeDone)
		for r := range merge.Out() {
			if r.Err != nil && mergeErr == nil {
				mergeErr = r.Err
			}
		}
	}()
	err := recvVectorRawFunc(m, t.cfg.Bins, func(off, count int, data []byte) error {
		merge.Submit(func() (struct{}, error) {
			cts, err := decodeVector(data, count)
			if err != nil {
				return struct{}{}, err
			}
			return struct{}{}, gs.merge(off, cts)
		})
		return nil
	})
	merge.Close()
	<-mergeDone
	if err == nil {
		err = mergeErr
	}
	if err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	return nil
}

// collectTableBuffered streams one DC's table into a private buffer and
// merges it into the shared combination only once it is complete — the
// tolerant flow's path. Ciphertext sums cannot be unpicked, so a DC the
// quorum policy later declares absent must never have touched the
// shared sum: buffering makes Result.AbsentDCs an exact coverage
// statement ("none of this DC's table is included"). The buffer is
// itself spilled, so up to NumDCs in-flight tables cost encoded bytes
// on scratch storage, not parsed ciphertexts on the heap.
func (t *Tally) collectTableBuffered(name string, m wire.Messenger, gs *gatherStore) error {
	var hdr VectorHeader
	if err := m.Expect(kindTable, &hdr); err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	if hdr.N != t.cfg.Bins {
		return fmt.Errorf("psc ts: DC %s sent %d bins, want %d", name, hdr.N, t.cfg.Bins)
	}
	buf, err := newSpill(t.cfg.Bins)
	if err != nil {
		return fmt.Errorf("psc ts: table spill for DC %s: %w", name, err)
	}
	defer buf.Close()
	err = recvVectorFunc(m, t.cfg.Bins, func(off int, cts []elgamal.Ciphertext) error {
		return buf.write(off, cts)
	})
	if err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	// recvVectorFunc guarantees the chunks tiled [0, Bins) in order, so
	// the buffer holds a whole table; fold it into the shared
	// combination chunk by chunk — DC goroutines fold concurrently, the
	// store's stripes keep them out of each other's way.
	err = forEachChunk(t.cfg.Bins, gs.chunk, func(off, end int) error {
		cts, err := buf.readRange(off, end-off)
		if err != nil {
			return err
		}
		return gs.merge(off, cts)
	})
	if err != nil {
		return fmt.Errorf("psc ts: table merge for DC %s: %w", name, err)
	}
	return nil
}

// mixCP drives one CP's mixing stage through the streaming block
// shuffle: a feeder goroutine forwards upstream chunks to the CP while
// the stream goroutine verifies, block by block, the CP's noise, every
// block's shuffle argument, the pass-continuity hashes of re-streamed
// intermediates, and the final pass's blinding — forwarding each
// verified blinded block downstream before the next arrives. Neither
// direction ever holds more than O(block) ciphertexts. The block
// shuffle arguments are transcript-sequential and stay on the stream
// goroutine; the independent batch checks (noise bit proofs, blind
// DLEQ RLCs) run on the verify shard. On any failure the round error
// is latched; out always closes so downstream stages unwind.
func (t *Tally) mixCP(name string, m wire.Messenger, joint elgamal.Point, nIn int, in <-chan vchunk, out chan<- vchunk, f *failer, chunk int) {
	// The forwarder owns out: it delivers each verified blinded block
	// downstream in block order and closes out once the shard drains.
	// mixCP returns only after that, so the caller's mix WaitGroup
	// still means "every CP's verification has finished".
	blind := parallel.NewOrdered[vchunk](parallel.PoolSize(), 2*parallel.PoolSize(), "psc-verify")
	fwdDone := make(chan struct{})
	go func() {
		defer close(fwdDone)
		defer close(out)
		for r := range blind.Out() {
			if r.Err != nil {
				f.fail(r.Err)
				continue
			}
			if f.latched() != nil {
				continue
			}
			select {
			case out <- r.V:
			case <-f.ch:
			}
		}
	}()
	t.mixCPStream(name, m, joint, nIn, in, blind, f, chunk)
	blind.Close()
	<-fwdDone
}

// mixCPStream is mixCP's protocol loop; it returns after the last
// block's blind check has been submitted to the shard, or early with
// the round failure latched.
func (t *Tally) mixCPStream(name string, m wire.Messenger, joint elgamal.Point, nIn int, in <-chan vchunk, blind *parallel.Ordered[vchunk], f *failer, chunk int) {
	prove := t.cfg.ShuffleProofRounds > 0
	total := nIn + t.cfg.NoisePerCP
	g := newGrid(total, blockOf(t.cfg.ShuffleBlockElems))
	passes := g.passes(passesOf(t.cfg.ShufflePasses))

	if err := m.Send(kindMix, VectorHeader{Round: t.cfg.Round, N: nIn}); err != nil {
		f.fail(fmt.Errorf("psc ts: mix to CP %s: %w", name, err))
		return
	}
	// Feeder: forward upstream chunks to the CP, retaining each chunk
	// on a bounded channel for pass-1 verification. The CP emits block
	// b only after receiving block b's elements and the verifier drains
	// the copies before expecting block b, so the channel never backs
	// up beyond its slack.
	feedCopy := make(chan []elgamal.Ciphertext, 4)
	go func() {
		defer close(feedCopy)
		for c := range in {
			if err := m.Send(kindChunk, ChunkMsg{Off: c.off, Count: len(c.cts), Data: encodeVector(c.cts)}); err != nil {
				f.fail(fmt.Errorf("psc ts: mix chunk to CP %s: %w", name, err))
				return
			}
			select {
			case feedCopy <- c.cts:
			case <-f.ch:
				return
			}
		}
	}()

	var hdr VectorHeader
	if err := m.Expect(kindMixed, &hdr); err != nil {
		f.fail(fmt.Errorf("psc ts: mixed from CP %s: %w", name, err))
		return
	}
	if hdr.N != total {
		f.fail(fmt.Errorf("psc ts: CP %s produced %d elements, want %d", name, hdr.N, total))
		return
	}

	// Noise: the CP sends only its appended elements, bit-verified per
	// chunk; the input prefix is ours by construction, so a CP cannot
	// tamper with it. The noise ciphertexts form the tail of the
	// shuffle input, so chunk order matters — the shard preserves it
	// while the per-chunk decodes and bit-proof batches verify
	// concurrently.
	noise := parallel.NewOrdered[[]elgamal.Ciphertext](parallel.PoolSize(), 2*parallel.PoolSize(), "psc-verify")
	noiseCts := make([]elgamal.Ciphertext, 0, t.cfg.NoisePerCP)
	noiseDone := make(chan struct{})
	go func() {
		// Reassembly drains concurrently with the receive loop so the
		// shard's depth bound throttles the loop instead of wedging it.
		defer close(noiseDone)
		for r := range noise.Out() {
			if r.Err != nil {
				f.fail(r.Err)
				continue
			}
			noiseCts = append(noiseCts, r.V...)
		}
	}()
	noiseFail := func(err error) {
		noise.Close()
		<-noiseDone
		f.fail(err)
	}
	for off := 0; off < t.cfg.NoisePerCP; {
		var nc NoiseChunkMsg
		if err := m.Expect(kindNoise, &nc); err != nil {
			noiseFail(fmt.Errorf("psc ts: noise from CP %s: %w", name, err))
			return
		}
		if nc.Off != off || nc.Count <= 0 || nc.Off+nc.Count > t.cfg.NoisePerCP {
			noiseFail(fmt.Errorf("psc ts: CP %s noise chunk [%d,%d) out of order", name, nc.Off, nc.Off+nc.Count))
			return
		}
		noise.Submit(func() ([]elgamal.Ciphertext, error) {
			return t.verifyNoiseChunk(name, joint, nc, prove)
		})
		off += nc.Count
	}
	noise.Close()
	<-noiseDone
	if f.latched() != nil {
		return
	}

	var tr *elgamal.ShuffleTranscript
	if prove {
		tr = elgamal.NewShuffleTranscript(joint, total, g.block, passes, t.cfg.ShuffleProofRounds)
	}

	// Pass 1: assemble the CP's input blocks from the fed copies plus
	// the verified noise tail, checking each block's argument as its
	// output lands.
	src := &blockSource{feed: feedCopy, tail: noiseCts}
	var prevHashes [][32]byte
	if passes > 1 {
		prevHashes = make([][32]byte, g.blocks(1))
	}
	for b := 0; b < g.blocks(1); b++ {
		inB, ok := src.next(g.blockLen(1, b), f)
		if !ok {
			return // upstream failed and already latched the error
		}
		outB := t.recvBlock(name, m, tr, joint, 1, b, inB, f)
		if outB == nil {
			return
		}
		if passes > 1 {
			prevHashes[b] = elgamal.HashBlock(outB)
		} else if !t.recvBlindSubmit(name, m, g.outStart(1, b), outB, blind, f) {
			return
		}
	}

	// Later passes: the CP re-streams the previous pass's output in the
	// new pass's block order; the continuity check proves the claimed
	// input is exactly the verified intermediate (per-block incremental
	// hashes), so no whole-vector copy is ever needed here.
	for p := 2; p <= passes; p++ {
		cont := newContinuity(g, p, prevHashes)
		var nextHashes [][32]byte
		if p < passes {
			nextHashes = make([][32]byte, g.blocks(p))
		}
		for b := 0; b < g.blocks(p); b++ {
			var fm BlockFeedMsg
			if err := m.Expect(kindShufFeed, &fm); err != nil {
				f.fail(fmt.Errorf("psc ts: feed from CP %s: %w", name, err))
				return
			}
			inB, err := parseBlockFeed(fm, p, b, g.blockLen(p, b))
			if err != nil {
				f.fail(fmt.Errorf("psc ts: CP %s: %w", name, err))
				return
			}
			if err := cont.absorb(b, inB); err != nil {
				verifyFailure("pass-continuity")
				f.fail(fmt.Errorf("psc ts: CP %s pass %d: %w", name, p, err))
				return
			}
			outB := t.recvBlock(name, m, tr, joint, p, b, inB, f)
			if outB == nil {
				return
			}
			if p < passes {
				nextHashes[b] = elgamal.HashBlock(outB)
			} else if !t.recvBlindSubmit(name, m, g.outStart(p, b), outB, blind, f) {
				return
			}
		}
		if err := cont.finish(); err != nil {
			verifyFailure("pass-continuity")
			f.fail(fmt.Errorf("psc ts: CP %s pass %d: %w", name, p, err))
			return
		}
		prevHashes = nextHashes
	}
}

// blockSource assembles pass-1 input blocks for the verifier: elements
// come from the upstream feed copies, then from the CP's verified noise
// tail.
type blockSource struct {
	feed    <-chan []elgamal.Ciphertext
	tail    []elgamal.Ciphertext
	pending []elgamal.Ciphertext
	drained bool
}

// next returns the next n input elements, or false when the upstream
// pipeline ended early (its failure is already latched) or the round
// failed.
func (s *blockSource) next(n int, f *failer) ([]elgamal.Ciphertext, bool) {
	for len(s.pending) < n {
		if s.drained {
			return nil, false
		}
		select {
		case cts, ok := <-s.feed:
			if !ok {
				s.pending = append(s.pending, s.tail...)
				s.tail = nil
				s.drained = true
				continue
			}
			s.pending = append(s.pending, cts...)
		case <-f.ch:
			return nil, false
		}
	}
	blk := s.pending[:n:n]
	s.pending = s.pending[n:]
	return blk, true
}

// continuity verifies that a pass's re-streamed input equals the
// previous pass's verified output: every arriving element feeds the
// incremental hash of the previous-pass block that produced it, and
// each completed hash must match the commitment recorded when that
// block's argument was verified. Only O(rows) hash states are live.
type continuity struct {
	g       grid
	p       int
	prev    [][32]byte
	hashers map[int]*elgamal.BlockHasher
	seen    int
	matched int
}

func newContinuity(g grid, p int, prev [][32]byte) *continuity {
	return &continuity{g: g, p: p, prev: prev, hashers: make(map[int]*elgamal.BlockHasher)}
}

// absorb feeds one claimed input block (block b of pass p) into the
// running hashes.
func (c *continuity) absorb(b int, cts []elgamal.Ciphertext) error {
	for j, ct := range cts {
		idx := c.g.inIndex(c.p, b, j)
		pb := c.g.prevBlockOf(c.p, idx)
		h := c.hashers[pb]
		if h == nil {
			h = elgamal.NewBlockHasher(c.g.blockLen(c.p-1, pb))
			c.hashers[pb] = h
		}
		h.Add(ct)
		c.seen++
		if h.Done() {
			if h.Sum() != c.prev[pb] {
				return fmt.Errorf("re-streamed input diverges from verified block %d of pass %d", pb, c.p-1)
			}
			delete(c.hashers, pb)
			c.matched++
		}
	}
	return nil
}

// finish checks that the whole intermediate vector was re-streamed.
func (c *continuity) finish() error {
	if c.seen != c.g.n || c.matched != len(c.prev) || len(c.hashers) != 0 {
		return fmt.Errorf("re-streamed input covered %d/%d elements, %d/%d blocks", c.seen, c.g.n, c.matched, len(c.prev))
	}
	return nil
}

// recvBlock receives and verifies one shuffled block (announcement plus
// opened shadow rounds) against the verifier's own input block. It
// returns nil after latching the round failure.
func (t *Tally) recvBlock(name string, m wire.Messenger, tr *elgamal.ShuffleTranscript, joint elgamal.Point, p, b int, inB []elgamal.Ciphertext, f *failer) []elgamal.Ciphertext {
	var bo BlockOutMsg
	if err := m.Expect(kindShufBlock, &bo); err != nil {
		f.fail(fmt.Errorf("psc ts: block from CP %s: %w", name, err))
		return nil
	}
	rounds := 0
	if tr != nil {
		rounds = t.cfg.ShuffleProofRounds
	}
	outB, commits, err := parseBlockOut(bo, p, b, len(inB), rounds)
	if err != nil {
		f.fail(fmt.Errorf("psc ts: CP %s: %w", name, err))
		return nil
	}
	if tr == nil {
		return outB
	}
	proof := elgamal.BlockShuffleProof{Commits: commits, Rounds: make([]elgamal.ShuffleRound, rounds)}
	for r := 0; r < rounds; r++ {
		var sm BlockShadowMsg
		if err := m.Expect(kindShufShadow, &sm); err != nil {
			f.fail(fmt.Errorf("psc ts: shadow from CP %s: %w", name, err))
			return nil
		}
		round, err := parseBlockShadow(sm, p, b, r, len(inB))
		if err != nil {
			f.fail(fmt.Errorf("psc ts: CP %s: %w", name, err))
			return nil
		}
		proof.Rounds[r] = round
	}
	if err := elgamal.VerifyShuffleBlock(tr, p, b, joint, inB, outB, proof); err != nil {
		verifyFailure("shuffle")
		f.fail(fmt.Errorf("psc ts: CP %s block %d/%d: %w", name, p, b, err))
		return nil
	}
	return outB
}

// verifyNoiseChunk decodes one noise chunk and verifies its bit proofs
// as a batch — shard work, independent of every other chunk.
func (t *Tally) verifyNoiseChunk(name string, joint elgamal.Point, nc NoiseChunkMsg, prove bool) ([]elgamal.Ciphertext, error) {
	cts, err := decodeVector(nc.Data, nc.Count)
	if err != nil {
		return nil, fmt.Errorf("psc ts: CP %s noise batch: %w", name, err)
	}
	if !prove {
		return cts, nil
	}
	if len(nc.Proofs) != nc.Count {
		return nil, fmt.Errorf("psc ts: CP %s sent %d bit proofs for %d noise elements", name, len(nc.Proofs), nc.Count)
	}
	proofs := make([]elgamal.BitProof, nc.Count)
	for i, w := range nc.Proofs {
		proof, err := unpackBitProof(w)
		if err != nil {
			return nil, fmt.Errorf("psc ts: CP %s bit proof %d: %w", name, nc.Off+i, err)
		}
		proofs[i] = proof
	}
	// Every appended noise element must provably encrypt a bit.
	if i, ok := elgamal.VerifyBitsBatch(joint, cts, proofs); !ok {
		verifyFailure("bit-proof")
		return nil, fmt.Errorf("psc ts: CP %s noise element %d is not a valid bit", name, nc.Off+i)
	}
	return cts, nil
}

// recvBlindSubmit receives the exponent-blinded form of one verified
// final-pass block and hands its decode and DLEQ check (a per-block
// RLC) to the verify shard, whose forwarder delivers verified chunks
// downstream in block order. Only frame validation happens here: the
// stream goroutine goes straight back to the next transcript-sequential
// block argument. It reports false after latching the round failure.
func (t *Tally) recvBlindSubmit(name string, m wire.Messenger, off int, outB []elgamal.Ciphertext, blind *parallel.Ordered[vchunk], f *failer) bool {
	var bc BlindChunkMsg
	if err := m.Expect(kindBlind, &bc); err != nil {
		f.fail(fmt.Errorf("psc ts: blinded from CP %s: %w", name, err))
		return false
	}
	if bc.Off != off || bc.Count != len(outB) {
		f.fail(fmt.Errorf("psc ts: CP %s blind chunk [%d,%d), want [%d,%d)", name, bc.Off, bc.Off+bc.Count, off, off+len(outB)))
		return false
	}
	blind.Submit(func() (vchunk, error) {
		cts, err := decodeVector(bc.Data, bc.Count)
		if err != nil {
			return vchunk{}, fmt.Errorf("psc ts: CP %s blinded batch: %w", name, err)
		}
		if t.cfg.ShuffleProofRounds > 0 {
			if len(bc.Proofs) != bc.Count {
				return vchunk{}, fmt.Errorf("psc ts: CP %s sent %d blind proofs for %d elements", name, len(bc.Proofs), bc.Count)
			}
			proofs := make([]elgamal.EqualityProof, bc.Count)
			for i, w := range bc.Proofs {
				proof, err := unpackEquality(w)
				if err != nil {
					return vchunk{}, fmt.Errorf("psc ts: CP %s blind proof %d: %w", name, off+i, err)
				}
				proofs[i] = proof
			}
			if i, ok := elgamal.VerifyBlindsBatch(outB, cts, proofs); !ok {
				verifyFailure("blind-proof")
				return vchunk{}, fmt.Errorf("psc ts: CP %s blinding of element %d unverified", name, off+i)
			}
		}
		return vchunk{off: off, cts: cts}, nil
	})
	return true
}

// verifyFailure counts a failed cryptographic verification in the
// process-wide registry: a non-zero count on a deployed tally means a
// party is misbehaving (or corrupting data), which operators must see
// even though the round itself aborts with a precise error.
func verifyFailure(kind string) {
	metrics.Default().Inc("psc/verify-failures")
	metrics.Default().Inc("psc/verify-failures/" + kind)
}

// decShareChunk is one CP's verified decryption shares for one chunk
// of the final vector, handed from the per-CP decrypt stream to the
// recovering combiner.
type decShareChunk struct {
	off    int
	shares []elgamal.DecryptionShare
}

// decryptCP streams the final batch to one CP from the shared spill and
// verifies its share chunks as they return (a per-chunk RLC), pushing
// each verified chunk to the combiner. Sending and receiving overlap:
// the CP answers chunk k while chunk k+1 is in flight; the sender hands
// each parsed chunk to the verifier over a bounded channel so the spill
// is decoded once per CP, not twice. On failure it latches the round
// error; out always closes.
func (t *Tally) decryptCP(name string, m wire.Messenger, cpKey elgamal.Point, src *lockedSpill, n, chunk int, f *failer, out chan<- decShareChunk) {
	// Share parsing and the per-chunk RLC run on the verify shard; the
	// forwarder owns out and delivers verified chunks in stream order,
	// so the combiner still sees them on the boundaries it expects.
	verify := parallel.NewOrdered[decShareChunk](parallel.PoolSize(), 2*parallel.PoolSize(), "psc-verify")
	fwdDone := make(chan struct{})
	go func() {
		defer close(fwdDone)
		defer close(out)
		for r := range verify.Out() {
			if r.Err != nil {
				f.fail(r.Err)
				continue
			}
			if f.latched() != nil {
				continue
			}
			select {
			case out <- r.V:
			case <-f.ch:
			}
		}
	}()
	t.decryptCPStream(name, m, cpKey, src, n, chunk, f, verify)
	verify.Close()
	<-fwdDone
}

// decryptCPStream is decryptCP's protocol loop; it returns after the
// last share chunk has been submitted to the shard, or early with the
// round failure latched.
func (t *Tally) decryptCPStream(name string, m wire.Messenger, cpKey elgamal.Point, src *lockedSpill, n, chunk int, f *failer, verify *parallel.Ordered[decShareChunk]) {
	prove := t.cfg.ShuffleProofRounds > 0
	sent := make(chan []elgamal.Ciphertext, 2)
	go func() {
		defer close(sent)
		if err := m.Send(kindDecrypt, VectorHeader{Round: t.cfg.Round, N: n}); err != nil {
			f.fail(fmt.Errorf("psc ts: decrypt to CP %s: %w", name, err))
			return
		}
		err := forEachChunk(n, chunk, func(off, end int) error {
			cts, err := src.readRange(off, end-off)
			if err != nil {
				return err
			}
			if err := m.Send(kindChunk, ChunkMsg{Off: off, Count: end - off, Data: encodeVector(cts)}); err != nil {
				return err
			}
			if !prove {
				return nil // verifier doesn't need the plaintext chunks
			}
			select {
			case sent <- cts:
				return nil
			case <-f.ch:
				return f.err
			}
		})
		if err != nil {
			f.fail(fmt.Errorf("psc ts: decrypt chunk to CP %s: %w", name, err))
		}
	}()

	var hdr VectorHeader
	if err := m.Expect(kindShares, &hdr); err != nil {
		f.fail(fmt.Errorf("psc ts: shares from CP %s: %w", name, err))
		return
	}
	if hdr.N != n {
		f.fail(fmt.Errorf("psc ts: CP %s answering %d elements, want %d", name, hdr.N, n))
		return
	}
	for off := 0; off < n; {
		// Share chunks must mirror the chunks we sent: the combiner
		// recovers plaintexts on the same boundaries, and RecoverBatch
		// requires share and ciphertext vectors of equal length.
		end := off + chunk
		if end > n {
			end = n
		}
		var sc ShareChunkMsg
		if err := m.Expect(kindShare, &sc); err != nil {
			f.fail(fmt.Errorf("psc ts: shares from CP %s: %w", name, err))
			return
		}
		if sc.Off != off || sc.Count != end-off {
			f.fail(fmt.Errorf("psc ts: CP %s share chunk [%d,%d), want [%d,%d)", name, sc.Off, sc.Off+sc.Count, off, end))
			return
		}
		// The matching plaintext chunk must be taken off the sender's
		// channel here, in stream order; the verification itself is
		// shard work.
		var cts []elgamal.Ciphertext
		if prove {
			select {
			case c, ok := <-sent:
				if !ok {
					return // sender failed and latched the error
				}
				cts = c
			case <-f.ch:
				return
			}
		}
		verify.Submit(func() (decShareChunk, error) {
			return t.verifyShareChunk(name, cpKey, sc, cts, prove)
		})
		off += sc.Count
	}
}

// verifyShareChunk parses one CP's share chunk and verifies its DLEQ
// RLC against the plaintext chunk the TS sent — shard work, independent
// of every other chunk.
func (t *Tally) verifyShareChunk(name string, cpKey elgamal.Point, sc ShareChunkMsg, cts []elgamal.Ciphertext, prove bool) (decShareChunk, error) {
	shares := make([]elgamal.DecryptionShare, 0, sc.Count)
	b := sc.Shares
	for i := 0; i < sc.Count; i++ {
		pt, used, err := elgamal.ParsePoint(b)
		if err != nil {
			return decShareChunk{}, fmt.Errorf("psc ts: CP %s share %d: %w", name, sc.Off+i, err)
		}
		b = b[used:]
		shares = append(shares, elgamal.DecryptionShare{Share: pt})
	}
	if len(b) != 0 {
		return decShareChunk{}, fmt.Errorf("psc ts: CP %s sent %d trailing share bytes", name, len(b))
	}
	if prove {
		if len(sc.Proofs) != sc.Count {
			return decShareChunk{}, fmt.Errorf("psc ts: CP %s sent %d share proofs for %d elements", name, len(sc.Proofs), sc.Count)
		}
		proofs := make([]elgamal.EqualityProof, sc.Count)
		for i, w := range sc.Proofs {
			proof, err := unpackEquality(w)
			if err != nil {
				return decShareChunk{}, fmt.Errorf("psc ts: CP %s share proof %d: %w", name, sc.Off+i, err)
			}
			proofs[i] = proof
		}
		if i, ok := elgamal.VerifySharesBatch(cpKey, cts, shares, proofs); !ok {
			verifyFailure("share-proof")
			return decShareChunk{}, fmt.Errorf("psc ts: CP %s share %d unverified", name, sc.Off+i)
		}
	}
	return decShareChunk{off: sc.Off, shares: shares}, nil
}
