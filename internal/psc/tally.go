package psc

import (
	"crypto/rand"
	"fmt"
	"sort"

	"repro/internal/elgamal"
	"repro/internal/wire"
)

// Tally is the PSC tally server, the coordination role the paper added
// to the original design (§3.1: "we slightly modify the original PSC
// design to include a TS to coordinate the actions of the DCs and
// CPs"). It relays and verifies; it holds no decryption capability and
// never sees an unencrypted bin.
type Tally struct {
	cfg Config
}

// NewTally validates the configuration and returns a tally server.
func NewTally(cfg Config) (*Tally, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tally{cfg: cfg}, nil
}

// Run executes one round over established connections (one per party).
func (t *Tally) Run(conns []*wire.Conn) (Result, error) {
	if len(conns) != t.cfg.NumDCs+t.cfg.NumCPs {
		return Result{}, fmt.Errorf("psc ts: have %d connections, want %d DCs + %d CPs",
			len(conns), t.cfg.NumDCs, t.cfg.NumCPs)
	}

	// Registration.
	dcConns := make(map[string]*wire.Conn)
	cpConns := make(map[string]*wire.Conn)
	cpKeys := make(map[string]elgamal.Point)
	var dcNames, cpNames []string
	for _, c := range conns {
		var reg RegisterMsg
		if err := c.Expect(kindRegister, &reg); err != nil {
			return Result{}, fmt.Errorf("psc ts: registration: %w", err)
		}
		switch reg.Role {
		case RoleDC:
			if _, dup := dcConns[reg.Name]; dup {
				return Result{}, fmt.Errorf("psc ts: duplicate DC %q", reg.Name)
			}
			dcConns[reg.Name] = c
			dcNames = append(dcNames, reg.Name)
		case RoleCP:
			if _, dup := cpConns[reg.Name]; dup {
				return Result{}, fmt.Errorf("psc ts: duplicate CP %q", reg.Name)
			}
			pk, _, err := elgamal.ParsePoint(reg.PubKey)
			if err != nil {
				return Result{}, fmt.Errorf("psc ts: CP %q public key: %w", reg.Name, err)
			}
			cpConns[reg.Name] = c
			cpKeys[reg.Name] = pk
			cpNames = append(cpNames, reg.Name)
		default:
			return Result{}, fmt.Errorf("psc ts: unknown role %q", reg.Role)
		}
	}
	if len(dcNames) != t.cfg.NumDCs || len(cpNames) != t.cfg.NumCPs {
		return Result{}, fmt.Errorf("psc ts: registered %d DCs and %d CPs, want %d and %d",
			len(dcNames), len(cpNames), t.cfg.NumDCs, t.cfg.NumCPs)
	}
	// Deterministic pipeline order.
	sort.Strings(cpNames)
	sort.Strings(dcNames)

	keyList := make([]elgamal.Point, 0, len(cpNames))
	keyBytes := make([][]byte, 0, len(cpNames))
	for _, n := range cpNames {
		keyList = append(keyList, cpKeys[n])
		keyBytes = append(keyBytes, cpKeys[n].Bytes())
	}
	joint, err := elgamal.CombineKeys(keyList...)
	if err != nil {
		return Result{}, fmt.Errorf("psc ts: combine keys: %w", err)
	}
	// The verification passes below multiply against the joint key for
	// every element; precompute its fixed-base table once.
	elgamal.Precompute(joint)

	hashKey := make([]byte, 32)
	if _, err := rand.Read(hashKey); err != nil {
		return Result{}, fmt.Errorf("psc ts: hash key: %w", err)
	}

	// Configuration. Only DCs receive the hash key.
	base := ConfigureMsg{
		Round:              t.cfg.Round,
		Bins:               t.cfg.Bins,
		NoisePerCP:         t.cfg.NoisePerCP,
		ShuffleProofRounds: t.cfg.ShuffleProofRounds,
		JointKey:           joint.Bytes(),
		CPKeys:             keyBytes,
	}
	for _, n := range cpNames {
		if err := cpConns[n].Send(kindConfig, base); err != nil {
			return Result{}, fmt.Errorf("psc ts: configure CP %s: %w", n, err)
		}
	}
	dcCfg := base
	dcCfg.HashKey = hashKey
	for _, n := range dcNames {
		if err := dcConns[n].Send(kindConfig, dcCfg); err != nil {
			return Result{}, fmt.Errorf("psc ts: configure DC %s: %w", n, err)
		}
	}

	// Collect encrypted tables and combine homomorphically: per-bin
	// ciphertext sums turn into OR in the exponent.
	var combined []elgamal.Ciphertext
	for _, n := range dcNames {
		var tbl TableMsg
		if err := dcConns[n].Expect(kindTable, &tbl); err != nil {
			return Result{}, fmt.Errorf("psc ts: table from DC %s: %w", n, err)
		}
		vec, err := decodeVector(tbl.Vector, t.cfg.Bins)
		if err != nil {
			return Result{}, fmt.Errorf("psc ts: table from DC %s: %w", n, err)
		}
		if combined == nil {
			combined = vec
			continue
		}
		combined = elgamal.BatchAddCiphertexts(combined, vec)
	}

	// Mixing pipeline.
	batch := combined
	for _, n := range cpNames {
		if err := cpConns[n].Send(kindMix, MixMsg{
			Round: t.cfg.Round, N: len(batch), Batch: encodeVector(batch),
		}); err != nil {
			return Result{}, fmt.Errorf("psc ts: mix to CP %s: %w", n, err)
		}
		var mixed MixedMsg
		if err := cpConns[n].Expect(kindMixed, &mixed); err != nil {
			return Result{}, fmt.Errorf("psc ts: mixed from CP %s: %w", n, err)
		}
		next, err := t.verifyMix(n, joint, batch, mixed)
		if err != nil {
			return Result{}, err
		}
		batch = next
	}

	// Joint decryption with verified shares.
	decReq := DecryptMsg{Round: t.cfg.Round, N: len(batch), Batch: encodeVector(batch)}
	for _, n := range cpNames {
		if err := cpConns[n].Send(kindDecrypt, decReq); err != nil {
			return Result{}, fmt.Errorf("psc ts: decrypt to CP %s: %w", n, err)
		}
	}
	allShares := make([][]elgamal.DecryptionShare, 0, len(cpNames))
	for _, n := range cpNames {
		var sh SharesMsg
		if err := cpConns[n].Expect(kindShares, &sh); err != nil {
			return Result{}, fmt.Errorf("psc ts: shares from CP %s: %w", n, err)
		}
		shares, err := t.verifyShares(n, cpKeys[n], batch, sh)
		if err != nil {
			return Result{}, err
		}
		allShares = append(allShares, shares)
	}

	// Recover plaintexts and count non-empty elements; the whole batch
	// normalizes with one inversion.
	reported := 0
	for _, m := range elgamal.RecoverBatch(batch, allShares) {
		if !m.IsIdentity() {
			reported++
		}
	}
	return Result{
		Round:       t.cfg.Round,
		Reported:    reported,
		Bins:        t.cfg.Bins,
		NoiseTrials: t.cfg.TotalNoiseTrials(),
	}, nil
}

// verifyMix checks one CP's mixing output against the batch the TS sent
// it and returns the verified next batch.
func (t *Tally) verifyMix(name string, joint elgamal.Point, in []elgamal.Ciphertext, mixed MixedMsg) ([]elgamal.Ciphertext, error) {
	wantN := len(in) + t.cfg.NoisePerCP
	if mixed.N != wantN {
		return nil, fmt.Errorf("psc ts: CP %s produced %d elements, want %d", name, mixed.N, wantN)
	}
	withNoise, err := decodeVector(mixed.WithNoise, wantN)
	if err != nil {
		return nil, fmt.Errorf("psc ts: CP %s noise batch: %w", name, err)
	}
	shuffled, err := decodeVector(mixed.Shuffled, wantN)
	if err != nil {
		return nil, fmt.Errorf("psc ts: CP %s shuffled batch: %w", name, err)
	}
	blinded, err := decodeVector(mixed.Blinded, wantN)
	if err != nil {
		return nil, fmt.Errorf("psc ts: CP %s blinded batch: %w", name, err)
	}
	// The input prefix must be untouched: a CP may only append noise.
	for i := range in {
		if !withNoise[i].Equal(in[i]) {
			return nil, fmt.Errorf("psc ts: CP %s modified input element %d", name, i)
		}
	}
	if t.cfg.ShuffleProofRounds > 0 {
		// Every appended noise element must provably encrypt a bit.
		if len(mixed.NoiseBits) != t.cfg.NoisePerCP {
			return nil, fmt.Errorf("psc ts: CP %s sent %d bit proofs, want %d",
				name, len(mixed.NoiseBits), t.cfg.NoisePerCP)
		}
		bitProofs := make([]elgamal.BitProof, t.cfg.NoisePerCP)
		for i := 0; i < t.cfg.NoisePerCP; i++ {
			proof, err := unpackBitProof(mixed.NoiseBits[i])
			if err != nil {
				return nil, fmt.Errorf("psc ts: CP %s bit proof %d: %w", name, i, err)
			}
			bitProofs[i] = proof
		}
		if i, ok := elgamal.VerifyBitsBatch(joint, withNoise[len(in):], bitProofs); !ok {
			return nil, fmt.Errorf("psc ts: CP %s noise element %d is not a valid bit", name, i)
		}
		// The shuffle must be a permutation + re-randomization.
		shufProof, err := unpackShuffleProof(mixed.ShuffleProof)
		if err != nil {
			return nil, fmt.Errorf("psc ts: CP %s shuffle proof: %w", name, err)
		}
		if err := elgamal.VerifyShuffle(joint, withNoise, shuffled, shufProof); err != nil {
			return nil, fmt.Errorf("psc ts: CP %s: %w", name, err)
		}
		// Every blinding must be a scalar power of the shuffled element.
		if len(mixed.BlindProofs) != wantN {
			return nil, fmt.Errorf("psc ts: CP %s sent %d blind proofs, want %d",
				name, len(mixed.BlindProofs), wantN)
		}
		blindProofs := make([]elgamal.EqualityProof, len(shuffled))
		for i := range shuffled {
			proof, err := unpackEquality(mixed.BlindProofs[i])
			if err != nil {
				return nil, fmt.Errorf("psc ts: CP %s blind proof %d: %w", name, i, err)
			}
			blindProofs[i] = proof
		}
		if i, ok := elgamal.VerifyBlindsBatch(shuffled, blinded, blindProofs); !ok {
			return nil, fmt.Errorf("psc ts: CP %s blinding of element %d unverified", name, i)
		}
	}
	return blinded, nil
}

// verifyShares parses and (when proofs are enabled) verifies a CP's
// decryption shares.
func (t *Tally) verifyShares(name string, cpKey elgamal.Point, batch []elgamal.Ciphertext, msg SharesMsg) ([]elgamal.DecryptionShare, error) {
	shares := make([]elgamal.DecryptionShare, len(batch))
	b := msg.Shares
	for i := range batch {
		pt, used, err := elgamal.ParsePoint(b)
		if err != nil {
			return nil, fmt.Errorf("psc ts: CP %s share %d: %w", name, i, err)
		}
		b = b[used:]
		shares[i] = elgamal.DecryptionShare{Share: pt}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("psc ts: CP %s sent %d trailing share bytes", name, len(b))
	}
	if t.cfg.ShuffleProofRounds > 0 {
		if len(msg.Proofs) != len(batch) {
			return nil, fmt.Errorf("psc ts: CP %s sent %d share proofs, want %d",
				name, len(msg.Proofs), len(batch))
		}
		proofs := make([]elgamal.EqualityProof, len(batch))
		for i := range batch {
			proof, err := unpackEquality(msg.Proofs[i])
			if err != nil {
				return nil, fmt.Errorf("psc ts: CP %s share proof %d: %w", name, i, err)
			}
			proofs[i] = proof
		}
		if i, ok := elgamal.VerifySharesBatch(cpKey, batch, shares, proofs); !ok {
			return nil, fmt.Errorf("psc ts: CP %s share %d unverified", name, i)
		}
	}
	return shares, nil
}
