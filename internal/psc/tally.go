package psc

import (
	"crypto/rand"
	"fmt"
	"sort"
	"sync"

	"repro/internal/elgamal"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Tally is the PSC tally server, the coordination role the paper added
// to the original design (§3.1: "we slightly modify the original PSC
// design to include a TS to coordinate the actions of the DCs and
// CPs"). It relays and verifies; it holds no decryption capability and
// never sees an unencrypted bin.
//
// Every vector phase is chunked and pipelined: DC tables are combined
// as their chunks arrive (strict flow) or buffered per DC and merged
// whole (tolerant flow, so an absent DC contributes nothing), each
// CP's verified blinded chunks are forwarded to the next CP while the
// upstream CP is still mixing, and decryption shares are verified per
// chunk from all CPs concurrently. The CP-chain barrier is the
// verifiable shuffle, which privacy requires to cover the whole vector
// at once.
type Tally struct {
	cfg Config
}

// NewTally validates the configuration and returns a tally server.
func NewTally(cfg Config) (*Tally, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tally{cfg: cfg}, nil
}

// vchunk is one in-flight slice of a vector moving through the CP
// pipeline.
type vchunk struct {
	off int
	cts []elgamal.Ciphertext
}

// failer latches the first error of a round and wakes every phase.
type failer struct {
	once sync.Once
	err  error
	ch   chan struct{}
}

func newFailer() *failer { return &failer{ch: make(chan struct{})} }

func (f *failer) fail(err error) {
	f.once.Do(func() {
		f.err = err
		close(f.ch)
	})
}

// latched returns the failure if one has been recorded.
func (f *failer) latched() error {
	select {
	case <-f.ch:
		return f.err
	default:
		return nil
	}
}

// roundParties is the outcome of the registration/configuration/table
// phase, everything the shared mixing and decryption tail needs.
type roundParties struct {
	cpM     map[string]wire.Messenger
	cpKeys  map[string]elgamal.Point
	cpNames []string
	joint   elgamal.Point
	absent  []string
}

// Run executes one round over established messengers (one per party —
// dedicated connections or per-round streams of multiplexed sessions).
// Without cfg.Recover any party failure fails the round and the
// messenger order is free; with it, the slice must be CPs first (see
// Config.Recover) and DC failures degrade the round down to the MinDCs
// quorum floor.
func (t *Tally) Run(parties []wire.Messenger) (Result, error) {
	if len(parties) != t.cfg.NumDCs+t.cfg.NumCPs {
		return Result{}, fmt.Errorf("psc ts: have %d connections, want %d DCs + %d CPs",
			len(parties), t.cfg.NumDCs, t.cfg.NumCPs)
	}

	// Collect encrypted tables from all DCs concurrently, combining
	// them homomorphically: per-bin ciphertext sums turn into OR in the
	// exponent. The strict flow merges chunks as they land and holds
	// only the running combination; the tolerant flow buffers each DC's
	// table and merges it once complete (see collectTableBuffered).
	combined := make([]elgamal.Ciphertext, t.cfg.Bins)
	seen := make([]bool, t.cfg.Bins)
	var rp roundParties
	var err error
	if t.cfg.Recover == nil {
		rp, err = t.gatherStrict(parties, combined, seen)
	} else {
		rp, err = t.gatherTolerant(parties, combined, seen)
	}
	if err != nil {
		return Result{}, err
	}
	cpNames, cpM, cpKeys, joint := rp.cpNames, rp.cpM, rp.cpKeys, rp.joint

	f := newFailer()
	chunk := chunkOf(t.cfg.ChunkElems)

	// Mixing pipeline: feeder -> CP 1 -> ... -> CP k -> collector, all
	// running at once, chunked end to end.
	feed := make(chan vchunk, 2)
	go func() {
		defer close(feed)
		_ = forEachChunk(len(combined), chunk, func(off, end int) error {
			select {
			case feed <- vchunk{off: off, cts: combined[off:end]}:
				return nil
			case <-f.ch:
				return f.err
			}
		})
	}()
	in := feed
	var mixWG sync.WaitGroup
	for i, n := range cpNames {
		out := make(chan vchunk, 2)
		nIn := t.cfg.Bins + i*t.cfg.NoisePerCP
		mixWG.Add(1)
		go func(name string, m wire.Messenger, nIn int, in <-chan vchunk, out chan<- vchunk) {
			defer mixWG.Done()
			t.mixCP(name, m, joint, nIn, in, out, f, chunk)
		}(n, cpM[n], nIn, in, out)
		in = out
	}
	finalN := t.cfg.Bins + t.cfg.NumCPs*t.cfg.NoisePerCP
	batch := make([]elgamal.Ciphertext, 0, finalN)
	for c := range in {
		batch = append(batch, c.cts...)
	}
	// Decryption must not start until every CP's verification has
	// finished: the last blinded chunks are forwarded before their
	// whole-vector proof check completes, and decrypting a batch whose
	// blinding later fails to verify would hand out shares the protocol
	// never authorized.
	mixDone := make(chan struct{})
	go func() { mixWG.Wait(); close(mixDone) }()
	select {
	case <-f.ch:
		return Result{}, f.err
	case <-mixDone:
	}
	if err := f.latched(); err != nil {
		// Both mixDone and f.ch may be ready at once; never let a
		// latched failure lose the select race.
		return Result{}, err
	}
	if len(batch) != finalN {
		return Result{}, fmt.Errorf("psc ts: mix pipeline produced %d elements, want %d", len(batch), finalN)
	}

	// Joint decryption with chunk-verified shares, all CPs in parallel.
	allShares := make([][]elgamal.DecryptionShare, len(cpNames))
	var decWG sync.WaitGroup
	for i, n := range cpNames {
		decWG.Add(1)
		go func(idx int, name string, m wire.Messenger) {
			defer decWG.Done()
			shares, err := t.decryptCP(name, m, cpKeys[name], batch, chunk, f)
			if err != nil {
				f.fail(err)
				return
			}
			allShares[idx] = shares
		}(i, n, cpM[n])
	}
	decDone := make(chan struct{})
	go func() { decWG.Wait(); close(decDone) }()
	select {
	case <-f.ch:
		return Result{}, f.err
	case <-decDone:
	}
	if err := f.latched(); err != nil {
		// A decrypt goroutine that failed still counts down decWG, so
		// both channels can be ready; re-check before trusting shares.
		return Result{}, err
	}

	// Recover plaintexts and count non-empty elements; the whole batch
	// normalizes with one inversion.
	reported := 0
	for _, m := range elgamal.RecoverBatch(batch, allShares) {
		if !m.IsIdentity() {
			reported++
		}
	}
	return Result{
		Round:       t.cfg.Round,
		Reported:    reported,
		Bins:        t.cfg.Bins,
		NoiseTrials: t.cfg.TotalNoiseTrials(),
		AbsentDCs:   rp.absent,
	}, nil
}

// gatherStrict is the pre-churn phase driver: order-agnostic
// registration, configuration, and table collection, with any party
// failure failing the round.
func (t *Tally) gatherStrict(parties []wire.Messenger, combined []elgamal.Ciphertext, seen []bool) (roundParties, error) {
	rp := roundParties{cpM: make(map[string]wire.Messenger), cpKeys: make(map[string]elgamal.Point)}
	dcM := make(map[string]wire.Messenger)
	var dcNames []string
	for _, m := range parties {
		var reg RegisterMsg
		if err := m.Expect(kindRegister, &reg); err != nil {
			return rp, fmt.Errorf("psc ts: registration: %w", err)
		}
		switch reg.Role {
		case RoleDC:
			if _, dup := dcM[reg.Name]; dup {
				return rp, fmt.Errorf("psc ts: duplicate DC %q", reg.Name)
			}
			dcM[reg.Name] = m
			dcNames = append(dcNames, reg.Name)
		case RoleCP:
			if err := rp.addCP(reg, m); err != nil {
				return rp, err
			}
		default:
			return rp, fmt.Errorf("psc ts: unknown role %q", reg.Role)
		}
	}
	if len(dcNames) != t.cfg.NumDCs || len(rp.cpNames) != t.cfg.NumCPs {
		return rp, fmt.Errorf("psc ts: registered %d DCs and %d CPs, want %d and %d",
			len(dcNames), len(rp.cpNames), t.cfg.NumDCs, t.cfg.NumCPs)
	}
	sort.Strings(dcNames)
	cpCfg, dcCfg, err := t.buildConfigs(&rp)
	if err != nil {
		return rp, err
	}
	for _, n := range rp.cpNames {
		if err := rp.cpM[n].Send(kindConfig, cpCfg); err != nil {
			return rp, fmt.Errorf("psc ts: configure CP %s: %w", n, err)
		}
	}
	for _, n := range dcNames {
		if err := dcM[n].Send(kindConfig, dcCfg); err != nil {
			return rp, fmt.Errorf("psc ts: configure DC %s: %w", n, err)
		}
	}
	var combineMu sync.Mutex
	tableErrs := make(chan error, len(dcNames))
	for _, n := range dcNames {
		go func(name string, m wire.Messenger) {
			tableErrs <- t.collectTable(name, m, combined, seen, &combineMu)
		}(n, dcM[n])
	}
	// Fail fast on the first error: the caller aborts the round, which
	// resets every stream and unwinds the remaining collectors (their
	// sends land in the buffered channel). Waiting for all of them here
	// would wedge the round on a stalled DC with no deadline armed.
	for range dcNames {
		if err := <-tableErrs; err != nil {
			return rp, err
		}
	}
	return rp, nil
}

// gatherTolerant is the churn-aware phase driver installed by the
// engine: CPs register positionally (all required), then each DC's
// register/configure/table exchange runs in its own goroutine with the
// engine's recovery callback deciding — per failed DC — between a
// restart on a rejoined session, a declared absence, and failing the
// round. The round proceeds only if the surviving tables meet the
// quorum floor and still cover every bin.
func (t *Tally) gatherTolerant(parties []wire.Messenger, combined []elgamal.Ciphertext, seen []bool) (roundParties, error) {
	rp := roundParties{cpM: make(map[string]wire.Messenger), cpKeys: make(map[string]elgamal.Point)}
	for i := 0; i < t.cfg.NumCPs; i++ {
		var reg RegisterMsg
		if err := parties[i].Expect(kindRegister, &reg); err != nil {
			return rp, fmt.Errorf("psc ts: registration: %w", err)
		}
		if reg.Role != RoleCP {
			return rp, fmt.Errorf("psc ts: party %d registered as %q, want %q", i, reg.Role, RoleCP)
		}
		if err := rp.addCP(reg, parties[i]); err != nil {
			return rp, err
		}
	}
	cpCfg, dcCfg, err := t.buildConfigs(&rp)
	if err != nil {
		return rp, err
	}
	for _, n := range rp.cpNames {
		if err := rp.cpM[n].Send(kindConfig, cpCfg); err != nil {
			return rp, fmt.Errorf("psc ts: configure CP %s: %w", n, err)
		}
	}

	type outcome struct {
		name   string
		absent bool
		err    error
	}
	outcomes := make(chan outcome, t.cfg.NumDCs)
	var mu sync.Mutex
	owner := make(map[string]int) // DC name -> party index, for duplicate detection across retries
	for di := 0; di < t.cfg.NumDCs; di++ {
		idx := t.cfg.NumCPs + di
		go func(idx int) {
			name, absent, err := t.runDC(idx, parties[idx], dcCfg, combined, seen, &mu, owner)
			outcomes <- outcome{name: name, absent: absent, err: err}
		}(idx)
	}
	completed := 0
	for i := 0; i < t.cfg.NumDCs; i++ {
		o := <-outcomes
		switch {
		case o.err != nil:
			// Fail fast: the round is aborting (or a DC misbehaved past
			// what quorum tolerates). The abort resets every stream, so
			// the remaining DC goroutines unwind into the buffered
			// channel instead of wedging this loop.
			return rp, o.err
		case o.absent:
			rp.absent = append(rp.absent, o.name)
		default:
			completed++
		}
	}
	min := t.cfg.MinDCs
	if min <= 0 {
		min = t.cfg.NumDCs
	}
	if completed < min || completed < 1 {
		return rp, fmt.Errorf("psc ts: quorum lost: %d of %d DC tables arrived, need %d (absent: %v)",
			completed, t.cfg.NumDCs, min, rp.absent)
	}
	// A degraded round must still cover the whole table: with >= 1
	// complete table every bin is populated, but verify rather than
	// decrypt zero-value ciphertexts.
	for i, s := range seen {
		if !s {
			return rp, fmt.Errorf("psc ts: bin %d has no contribution after degradation", i)
		}
	}
	sort.Strings(rp.absent)
	return rp, nil
}

// runDC drives one data collector's registration/configure/table
// exchange, retrying once on a replacement messenger when the recovery
// callback provides one. Tables are buffered per DC and merged into the
// shared combination only once complete, so a failed upload leaves no
// partial state: every failure before the table's completion is
// retryable, and a DC declared absent contributed nothing.
func (t *Tally) runDC(idx int, m wire.Messenger, dcCfg ConfigureMsg, combined []elgamal.Ciphertext, seen []bool, mu *sync.Mutex, owner map[string]int) (name string, absent bool, err error) {
	attempt := func(m wire.Messenger) (string, error) {
		var reg RegisterMsg
		if err := m.Expect(kindRegister, &reg); err != nil {
			return "", fmt.Errorf("psc ts: registration: %w", err)
		}
		if reg.Role != RoleDC {
			return reg.Name, fmt.Errorf("psc ts: party %d registered as %q, want %q", idx, reg.Role, RoleDC)
		}
		mu.Lock()
		prev, claimed := owner[reg.Name]
		if !claimed {
			owner[reg.Name] = idx
		}
		mu.Unlock()
		if claimed && prev != idx {
			return reg.Name, fmt.Errorf("psc ts: duplicate DC %q", reg.Name)
		}
		if err := m.Send(kindConfig, dcCfg); err != nil {
			return reg.Name, fmt.Errorf("psc ts: configure DC %s: %w", reg.Name, err)
		}
		return reg.Name, t.collectTableBuffered(reg.Name, m, combined, seen, mu)
	}

	name, err = attempt(m)
	if err == nil {
		return name, false, nil
	}
	repl, absentOK := t.cfg.Recover(idx, name, true)
	if repl != nil {
		retryName, retryErr := attempt(repl)
		if retryName != "" {
			name = retryName
		}
		if retryErr == nil {
			return name, false, nil
		}
		err = retryErr
		_, absentOK = t.cfg.Recover(idx, name, false)
	}
	if name == "" {
		name = fmt.Sprintf("dc#%d", idx-t.cfg.NumCPs)
	}
	if absentOK {
		return name, true, nil
	}
	return name, false, err
}

// addCP records one computation party's registration.
func (rp *roundParties) addCP(reg RegisterMsg, m wire.Messenger) error {
	if _, dup := rp.cpM[reg.Name]; dup {
		return fmt.Errorf("psc ts: duplicate CP %q", reg.Name)
	}
	pk, _, err := elgamal.ParsePoint(reg.PubKey)
	if err != nil {
		return fmt.Errorf("psc ts: CP %q public key: %w", reg.Name, err)
	}
	rp.cpM[reg.Name] = m
	rp.cpKeys[reg.Name] = pk
	rp.cpNames = append(rp.cpNames, reg.Name)
	return nil
}

// buildConfigs combines the CP keys into the round's joint key and
// materializes the configure messages (the DC variant carries the hash
// key, which CPs must not see). cpNames is sorted here: the mixing
// pipeline order must be deterministic.
func (t *Tally) buildConfigs(rp *roundParties) (cpCfg, dcCfg ConfigureMsg, err error) {
	sort.Strings(rp.cpNames)
	keyList := make([]elgamal.Point, 0, len(rp.cpNames))
	keyBytes := make([][]byte, 0, len(rp.cpNames))
	for _, n := range rp.cpNames {
		keyList = append(keyList, rp.cpKeys[n])
		keyBytes = append(keyBytes, rp.cpKeys[n].Bytes())
	}
	rp.joint, err = elgamal.CombineKeys(keyList...)
	if err != nil {
		return cpCfg, dcCfg, fmt.Errorf("psc ts: combine keys: %w", err)
	}
	// The verification passes multiply against the joint key for every
	// element; precompute its fixed-base table once.
	elgamal.Precompute(rp.joint)
	hashKey := make([]byte, 32)
	if _, err := rand.Read(hashKey); err != nil {
		return cpCfg, dcCfg, fmt.Errorf("psc ts: hash key: %w", err)
	}
	cpCfg = ConfigureMsg{
		Round:              t.cfg.Round,
		Bins:               t.cfg.Bins,
		NoisePerCP:         t.cfg.NoisePerCP,
		ShuffleProofRounds: t.cfg.ShuffleProofRounds,
		ChunkElems:         t.cfg.ChunkElems,
		JointKey:           rp.joint.Bytes(),
		CPKeys:             keyBytes,
	}
	dcCfg = cpCfg
	dcCfg.HashKey = hashKey
	return cpCfg, dcCfg, nil
}

// collectTable streams one DC's table into the shared combination as
// chunks arrive — the strict flow's memory-lean path, holding only the
// running combination. That is safe only because any DC failure fails
// the whole strict round: a partially merged table can never outlive
// its round as a completed result.
func (t *Tally) collectTable(name string, m wire.Messenger, combined []elgamal.Ciphertext, seen []bool, mu *sync.Mutex) error {
	var hdr VectorHeader
	if err := m.Expect(kindTable, &hdr); err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	if hdr.N != t.cfg.Bins {
		return fmt.Errorf("psc ts: DC %s sent %d bins, want %d", name, hdr.N, t.cfg.Bins)
	}
	err := recvVectorFunc(m, t.cfg.Bins, func(off int, cts []elgamal.Ciphertext) error {
		mu.Lock()
		defer mu.Unlock()
		mergeChunk(combined, seen, off, cts)
		return nil
	})
	if err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	return nil
}

// collectTableBuffered streams one DC's table into a private buffer and
// merges it into the shared combination only once it is complete — the
// tolerant flow's path. Ciphertext sums cannot be unpicked, so a DC the
// quorum policy later declares absent must never have touched the
// shared sum: buffering makes Result.AbsentDCs an exact coverage
// statement ("none of this DC's table is included") at the cost of up
// to NumDCs in-flight table buffers instead of one running combination.
func (t *Tally) collectTableBuffered(name string, m wire.Messenger, combined []elgamal.Ciphertext, seen []bool, mu *sync.Mutex) error {
	var hdr VectorHeader
	if err := m.Expect(kindTable, &hdr); err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	if hdr.N != t.cfg.Bins {
		return fmt.Errorf("psc ts: DC %s sent %d bins, want %d", name, hdr.N, t.cfg.Bins)
	}
	table, err := recvVector(m, t.cfg.Bins)
	if err != nil {
		return fmt.Errorf("psc ts: table from DC %s: %w", name, err)
	}
	// recvVector guarantees the chunks tiled [0, Bins) in order, so the
	// buffer is a whole table; merge it in one shot.
	mu.Lock()
	defer mu.Unlock()
	mergeChunk(combined, seen, 0, table)
	return nil
}

// mergeChunk folds cts into the combination at element offset off. The
// caller holds the combination mutex.
func mergeChunk(combined []elgamal.Ciphertext, seen []bool, off int, cts []elgamal.Ciphertext) {
	fresh := true
	have := true
	for i := range cts {
		if seen[off+i] {
			fresh = false
		} else {
			have = false
		}
	}
	switch {
	case fresh && have: // impossible (empty chunk is rejected upstream)
	case fresh:
		copy(combined[off:], cts)
	case have:
		// All positions populated: one batch add normalizes the whole
		// chunk with a single inversion.
		copy(combined[off:], elgamal.BatchAddCiphertexts(combined[off:off+len(cts)], cts))
	default:
		for i, ct := range cts {
			if seen[off+i] {
				combined[off+i] = combined[off+i].Add(ct)
			} else {
				combined[off+i] = ct
			}
		}
	}
	for i := range cts {
		seen[off+i] = true
	}
}

// mixCP drives one CP's mixing step: it forwards input chunks from
// upstream while accumulating them for verification, then verifies the
// CP's noise, shuffle, and blinding, emitting verified blinded chunks
// downstream as they arrive. On any failure it latches the round error;
// out always closes so downstream stages unwind.
func (t *Tally) mixCP(name string, m wire.Messenger, joint elgamal.Point, nIn int, in <-chan vchunk, out chan<- vchunk, f *failer, chunk int) {
	defer close(out)
	prove := t.cfg.ShuffleProofRounds > 0

	if err := m.Send(kindMix, VectorHeader{Round: t.cfg.Round, N: nIn}); err != nil {
		f.fail(fmt.Errorf("psc ts: mix to CP %s: %w", name, err))
		return
	}
	inVec := make([]elgamal.Ciphertext, 0, nIn)
	for c := range in {
		inVec = append(inVec, c.cts...)
		if err := m.Send(kindChunk, ChunkMsg{Off: c.off, Count: len(c.cts), Data: encodeVector(c.cts)}); err != nil {
			f.fail(fmt.Errorf("psc ts: mix chunk to CP %s: %w", name, err))
			return
		}
	}
	if len(inVec) != nIn {
		return // upstream failed and already latched the error
	}

	wantN := nIn + t.cfg.NoisePerCP
	var hdr VectorHeader
	if err := m.Expect(kindMixed, &hdr); err != nil {
		f.fail(fmt.Errorf("psc ts: mixed from CP %s: %w", name, err))
		return
	}
	if hdr.N != wantN {
		f.fail(fmt.Errorf("psc ts: CP %s produced %d elements, want %d", name, hdr.N, wantN))
		return
	}

	// Noise: the CP sends only its appended elements; the input prefix
	// is ours by construction, so a CP cannot tamper with it.
	noiseCts := make([]elgamal.Ciphertext, 0, t.cfg.NoisePerCP)
	var bitProofs []elgamal.BitProof
	for len(noiseCts) < t.cfg.NoisePerCP {
		var nc NoiseChunkMsg
		if err := m.Expect(kindNoise, &nc); err != nil {
			f.fail(fmt.Errorf("psc ts: noise from CP %s: %w", name, err))
			return
		}
		if nc.Off != len(noiseCts) || nc.Count <= 0 || nc.Off+nc.Count > t.cfg.NoisePerCP {
			f.fail(fmt.Errorf("psc ts: CP %s noise chunk [%d,%d) out of order", name, nc.Off, nc.Off+nc.Count))
			return
		}
		cts, err := decodeVector(nc.Data, nc.Count)
		if err != nil {
			f.fail(fmt.Errorf("psc ts: CP %s noise batch: %w", name, err))
			return
		}
		noiseCts = append(noiseCts, cts...)
		if prove {
			if len(nc.Proofs) != nc.Count {
				f.fail(fmt.Errorf("psc ts: CP %s sent %d bit proofs for %d noise elements", name, len(nc.Proofs), nc.Count))
				return
			}
			for i, w := range nc.Proofs {
				proof, err := unpackBitProof(w)
				if err != nil {
					f.fail(fmt.Errorf("psc ts: CP %s bit proof %d: %w", name, nc.Off+i, err))
					return
				}
				bitProofs = append(bitProofs, proof)
			}
		}
	}
	if prove {
		// Every appended noise element must provably encrypt a bit.
		if i, ok := elgamal.VerifyBitsBatch(joint, noiseCts, bitProofs); !ok {
			verifyFailure("bit-proof")
			f.fail(fmt.Errorf("psc ts: CP %s noise element %d is not a valid bit", name, i))
			return
		}
	}
	withNoise := make([]elgamal.Ciphertext, 0, wantN)
	withNoise = append(withNoise, inVec...)
	withNoise = append(withNoise, noiseCts...)

	// The shuffle is the privacy barrier: its proof covers the whole
	// permuted vector, so this is the one phase that waits for a full
	// vector before verifying.
	shuffled, err := recvVector(m, wantN)
	if err != nil {
		f.fail(fmt.Errorf("psc ts: CP %s shuffled batch: %w", name, err))
		return
	}
	if prove {
		proof, err := recvShuffleProof(m, t.cfg.ShuffleProofRounds, wantN)
		if err != nil {
			f.fail(fmt.Errorf("psc ts: CP %s shuffle proof: %w", name, err))
			return
		}
		if err := elgamal.VerifyShuffle(joint, withNoise, shuffled, proof); err != nil {
			verifyFailure("shuffle")
			f.fail(fmt.Errorf("psc ts: CP %s: %w", name, err))
			return
		}
	}

	// Blinded chunks forward downstream the moment they parse — the
	// next CP overlaps its work with this CP's remaining chunks — while
	// the DLEQ proofs accumulate for one whole-vector batch
	// verification: the random-linear-combination check amortizes over
	// the full batch (chunked RLCs cost ~5% of a round), and since the
	// forwarded elements are semantically secure ciphertexts, a CP that
	// fails verification only aborts the round before any decryption.
	blinded := make([]elgamal.Ciphertext, 0, wantN)
	var blindProofs []elgamal.EqualityProof
	for off := 0; off < wantN; {
		var bc BlindChunkMsg
		if err := m.Expect(kindBlind, &bc); err != nil {
			f.fail(fmt.Errorf("psc ts: blinded from CP %s: %w", name, err))
			return
		}
		if bc.Off != off || bc.Count <= 0 || off+bc.Count > wantN {
			f.fail(fmt.Errorf("psc ts: CP %s blind chunk [%d,%d) out of order", name, bc.Off, bc.Off+bc.Count))
			return
		}
		cts, err := decodeVector(bc.Data, bc.Count)
		if err != nil {
			f.fail(fmt.Errorf("psc ts: CP %s blinded batch: %w", name, err))
			return
		}
		if prove {
			if len(bc.Proofs) != bc.Count {
				f.fail(fmt.Errorf("psc ts: CP %s sent %d blind proofs for %d elements", name, len(bc.Proofs), bc.Count))
				return
			}
			for i, w := range bc.Proofs {
				proof, err := unpackEquality(w)
				if err != nil {
					f.fail(fmt.Errorf("psc ts: CP %s blind proof %d: %w", name, off+i, err))
					return
				}
				blindProofs = append(blindProofs, proof)
			}
		}
		blinded = append(blinded, cts...)
		select {
		case out <- vchunk{off: off, cts: cts}:
		case <-f.ch:
			return
		}
		off += bc.Count
	}
	if prove {
		if i, ok := elgamal.VerifyBlindsBatch(shuffled, blinded, blindProofs); !ok {
			verifyFailure("blind-proof")
			f.fail(fmt.Errorf("psc ts: CP %s blinding of element %d unverified", name, i))
			return
		}
	}
}

// verifyFailure counts a failed cryptographic verification in the
// process-wide registry: a non-zero count on a deployed tally means a
// party is misbehaving (or corrupting data), which operators must see
// even though the round itself aborts with a precise error.
func verifyFailure(kind string) {
	metrics.Default().Inc("psc/verify-failures")
	metrics.Default().Inc("psc/verify-failures/" + kind)
}

// decryptCP streams the final batch to one CP and verifies its share
// chunks as they return. Sending and receiving overlap: the CP answers
// chunk k while chunk k+1 is in flight.
func (t *Tally) decryptCP(name string, m wire.Messenger, cpKey elgamal.Point, batch []elgamal.Ciphertext, chunk int, f *failer) ([]elgamal.DecryptionShare, error) {
	go func() {
		if err := m.Send(kindDecrypt, VectorHeader{Round: t.cfg.Round, N: len(batch)}); err != nil {
			f.fail(fmt.Errorf("psc ts: decrypt to CP %s: %w", name, err))
			return
		}
		if err := sendVector(m, batch, chunk); err != nil {
			f.fail(fmt.Errorf("psc ts: decrypt chunk to CP %s: %w", name, err))
		}
	}()

	var hdr VectorHeader
	if err := m.Expect(kindShares, &hdr); err != nil {
		return nil, fmt.Errorf("psc ts: shares from CP %s: %w", name, err)
	}
	if hdr.N != len(batch) {
		return nil, fmt.Errorf("psc ts: CP %s answering %d elements, want %d", name, hdr.N, len(batch))
	}
	// Share chunks parse on arrival (overlapping the CP's computation
	// of later chunks); the Chaum–Pedersen proofs verify once over the
	// whole vector so the RLC amortizes across the full batch.
	prove := t.cfg.ShuffleProofRounds > 0
	shares := make([]elgamal.DecryptionShare, 0, len(batch))
	var proofs []elgamal.EqualityProof
	for off := 0; off < len(batch); {
		var sc ShareChunkMsg
		if err := m.Expect(kindShare, &sc); err != nil {
			return nil, fmt.Errorf("psc ts: shares from CP %s: %w", name, err)
		}
		if sc.Off != off || sc.Count <= 0 || off+sc.Count > len(batch) {
			return nil, fmt.Errorf("psc ts: CP %s share chunk [%d,%d) out of order", name, sc.Off, sc.Off+sc.Count)
		}
		b := sc.Shares
		for i := 0; i < sc.Count; i++ {
			pt, used, err := elgamal.ParsePoint(b)
			if err != nil {
				return nil, fmt.Errorf("psc ts: CP %s share %d: %w", name, off+i, err)
			}
			b = b[used:]
			shares = append(shares, elgamal.DecryptionShare{Share: pt})
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("psc ts: CP %s sent %d trailing share bytes", name, len(b))
		}
		if prove {
			if len(sc.Proofs) != sc.Count {
				return nil, fmt.Errorf("psc ts: CP %s sent %d share proofs for %d elements", name, len(sc.Proofs), sc.Count)
			}
			for i, w := range sc.Proofs {
				proof, err := unpackEquality(w)
				if err != nil {
					return nil, fmt.Errorf("psc ts: CP %s share proof %d: %w", name, off+i, err)
				}
				proofs = append(proofs, proof)
			}
		}
		off += sc.Count
	}
	if prove {
		if i, ok := elgamal.VerifySharesBatch(cpKey, batch, shares, proofs); !ok {
			verifyFailure("share-proof")
			return nil, fmt.Errorf("psc ts: CP %s share %d unverified", name, i)
		}
	}
	return shares, nil
}
