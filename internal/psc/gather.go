package psc

import (
	"fmt"
	"sync"

	"repro/internal/elgamal"
)

// gatherStore holds the running homomorphic combination of DC tables on
// spill storage: the last whole-vector heap structure the TS had. Bins
// live as encoded ciphertexts in a spill store plus one coverage bit
// each, partitioned into chunk-aligned stripes so concurrent DC streams
// merge disjoint chunks in parallel — each merge is a read-modify-write
// of one encoded range under that range's stripe lock, and the TS's
// parsed-ciphertext residency during the gather is O(chunk) per
// in-flight merge rather than O(bins).
type gatherStore struct {
	bins  int
	chunk int
	sp    *ctSpill
	seen  []bool // per-bin coverage, guarded by the covering stripe
	strps []gatherStripe
}

type gatherStripe struct {
	mu      sync.Mutex
	scratch []byte // per-stripe read buffer; the spill's shared one is not concurrency-safe
}

// newGatherStore creates a spilled combination table of bins elements
// striped on chunk boundaries.
func newGatherStore(bins, chunk int) (*gatherStore, error) {
	chunk = chunkOf(chunk)
	sp, err := newSpill(bins)
	if err != nil {
		return nil, err
	}
	return &gatherStore{
		bins:  bins,
		chunk: chunk,
		sp:    sp,
		seen:  make([]bool, bins),
		strps: make([]gatherStripe, (bins+chunk-1)/chunk),
	}, nil
}

// merge folds cts into the combination at element offset off: per-bin
// ciphertext sums turn into OR in the exponent. Chunks from well-formed
// senders are chunk-aligned and take one stripe; ragged ranges lock
// their covering stripes in ascending order, so merges never deadlock.
func (g *gatherStore) merge(off int, cts []elgamal.Ciphertext) error {
	if off < 0 || off+len(cts) > g.bins {
		return fmt.Errorf("psc: merge [%d,%d) out of range %d", off, off+len(cts), g.bins)
	}
	if len(cts) == 0 {
		return nil
	}
	lo, hi := off/g.chunk, (off+len(cts)-1)/g.chunk
	for s := lo; s <= hi; s++ {
		g.strps[s].mu.Lock()
	}
	defer func() {
		for s := lo; s <= hi; s++ {
			g.strps[s].mu.Unlock()
		}
	}()

	fresh, have := true, true
	for i := range cts {
		if g.seen[off+i] {
			fresh = false
		} else {
			have = false
		}
	}
	switch {
	case fresh:
		if err := g.sp.write(off, cts); err != nil {
			return err
		}
	case have:
		// All positions populated: one batch add normalizes the whole
		// chunk with a single inversion.
		cur, scratch, err := g.sp.readRangeScratch(off, len(cts), g.strps[lo].scratch)
		g.strps[lo].scratch = scratch
		if err != nil {
			return err
		}
		if err := g.sp.write(off, elgamal.BatchAddCiphertexts(cur, cts)); err != nil {
			return err
		}
	default:
		cur, scratch, err := g.sp.readRangeScratch(off, len(cts), g.strps[lo].scratch)
		g.strps[lo].scratch = scratch
		if err != nil {
			return err
		}
		for i, ct := range cts {
			if g.seen[off+i] {
				cur[i] = cur[i].Add(ct)
			} else {
				cur[i] = ct
			}
		}
		if err := g.sp.write(off, cur); err != nil {
			return err
		}
	}
	for i := range cts {
		g.seen[off+i] = true
	}
	return nil
}

// uncovered returns the first bin with no contribution, or -1 when
// every bin is populated — the degraded-round coverage check.
func (g *gatherStore) uncovered() int {
	for i, s := range g.seen {
		if !s {
			return i
		}
	}
	return -1
}

// readRange decodes count combined elements at off. Single-reader only
// (the mix feeder, after the gather barrier): it uses the spill's
// shared read buffer.
func (g *gatherStore) readRange(off, count int) ([]elgamal.Ciphertext, error) {
	return g.sp.readRange(off, count)
}

// Close releases the backing storage. Safe to call more than once.
func (g *gatherStore) Close() error { return g.sp.Close() }
