package psc

import (
	"fmt"
	"sync"

	"repro/internal/elgamal"
	"repro/internal/spill"
)

// spillSlot is the fixed record size: a length byte plus the maximal
// ciphertext encoding (two uncompressed points). Identity points encode
// shorter; the length byte keeps parsing exact.
const spillSlot = 1 + 130

// ctSpill is the ciphertext codec over a spill.Store: a random-access
// store of n encoded ciphertexts backing the streaming shuffle's
// inter-pass vectors, the tally's combined gather table, and the
// pre-decrypt buffer. It holds O(1) ciphertexts in memory — encoded
// records are ~10× smaller than parsed ciphertexts and never enter the
// heap as group elements until read.
type ctSpill struct {
	st *spill.Store
}

// newSpill creates a store for n ciphertexts. The backing respects the
// process spill dir (-spill-dir), falling back to memory where that dir
// is unwritable.
func newSpill(n int) (*ctSpill, error) {
	st, err := spill.New(n, spillSlot)
	if err != nil {
		return nil, err
	}
	return &ctSpill{st: st}, nil
}

// write stores cts at element offset off.
func (s *ctSpill) write(off int, cts []elgamal.Ciphertext) error {
	return s.st.WriteAt(off, encodeSlots(cts))
}

// encodeSlots packs ciphertexts into fixed-size spill records.
func encodeSlots(cts []elgamal.Ciphertext) []byte {
	buf := make([]byte, 0, len(cts)*spillSlot)
	for _, c := range cts {
		n := len(buf)
		buf = append(buf, 0)
		buf = c.AppendTo(buf)
		buf[n] = byte(len(buf) - n - 1)
		for len(buf)-n < spillSlot {
			buf = append(buf, 0)
		}
	}
	return buf
}

// readRange returns the count elements starting at off.
func (s *ctSpill) readRange(off, count int) ([]elgamal.Ciphertext, error) {
	raw, err := s.st.ReadRange(off, count)
	if err != nil {
		return nil, err
	}
	out := make([]elgamal.Ciphertext, 0, count)
	for i := 0; i < count; i++ {
		c, err := decodeSlot(raw[i*spillSlot:])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// readRangeScratch is readRange reading through the caller's scratch
// buffer instead of the store's shared one — for concurrent readers of
// disjoint ranges (the gather store's stripes). It returns the decoded
// elements and the possibly-grown scratch for reuse.
func (s *ctSpill) readRangeScratch(off, count int, scratch []byte) ([]elgamal.Ciphertext, []byte, error) {
	raw, scratch, err := s.st.ReadRangeInto(off, count, scratch)
	if err != nil {
		return nil, scratch, err
	}
	out := make([]elgamal.Ciphertext, 0, count)
	for i := 0; i < count; i++ {
		c, err := decodeSlot(raw[i*spillSlot:])
		if err != nil {
			return nil, scratch, err
		}
		out = append(out, c)
	}
	return out, scratch, nil
}

// readIndices gathers the elements at the given offsets — the strided
// read of a column pass.
func (s *ctSpill) readIndices(idx []int) ([]elgamal.Ciphertext, error) {
	out := make([]elgamal.Ciphertext, 0, len(idx))
	var slot [spillSlot]byte
	for _, i := range idx {
		if err := s.st.ReadSlot(i, slot[:]); err != nil {
			return nil, err
		}
		c, err := decodeSlot(slot[:])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// decodeSlot parses one fixed-size record.
func decodeSlot(b []byte) (elgamal.Ciphertext, error) {
	n := int(b[0])
	if n < 2 || n > spillSlot-1 {
		return elgamal.Ciphertext{}, fmt.Errorf("psc: corrupt spill slot (len %d)", n)
	}
	c, used, err := elgamal.ParseCiphertext(b[1 : 1+n])
	if err != nil {
		return elgamal.Ciphertext{}, fmt.Errorf("psc: corrupt spill slot: %w", err)
	}
	if used != n {
		return elgamal.Ciphertext{}, fmt.Errorf("psc: spill slot has %d trailing bytes", n-used)
	}
	return c, nil
}

// Close releases the backing storage. Safe to call more than once.
func (s *ctSpill) Close() error {
	return s.st.Close()
}

// lockedSpill serializes a ctSpill shared by concurrent readers (the
// tally's per-CP decrypt streams all walk the final vector) and makes
// closing safe while readers may still be in flight: a round-failure
// path can tear the spill down and any late reader gets an error, not
// a read of released storage.
type lockedSpill struct {
	mu     sync.Mutex
	sp     *ctSpill
	closed bool
}

func (ls *lockedSpill) readRange(off, count int) ([]elgamal.Ciphertext, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return nil, fmt.Errorf("psc: spill closed")
	}
	return ls.sp.readRange(off, count)
}

// Close releases the underlying spill; subsequent reads error.
func (ls *lockedSpill) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.closed = true
	return ls.sp.Close()
}
