package psc

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/elgamal"
)

// spill is a random-access store of n encoded ciphertexts backing the
// streaming shuffle's inter-pass vectors and the tally's pre-decrypt
// buffer. It holds O(1) ciphertexts in memory: records live in a
// fixed-slot temp file (falling back to an in-memory byte buffer where
// temp files are unavailable), written sequentially by one pass and
// read back — contiguously or strided — by the next. Encoded records
// are ~10× smaller than parsed ciphertexts and never enter the heap as
// group elements until read.
type spill struct {
	n       int
	file    *os.File // nil when memory-backed
	mem     []byte
	readBuf []byte
}

// spillSlot is the fixed record size: a length byte plus the maximal
// ciphertext encoding (two uncompressed points). Identity points encode
// shorter; the length byte keeps parsing exact.
const spillSlot = 1 + 130

// newSpill creates a store for n ciphertexts.
func newSpill(n int) (*spill, error) {
	s := &spill{n: n}
	f, err := os.CreateTemp("", "psc-shuffle-*.spill")
	if err != nil {
		// No writable temp dir: keep the encoded bytes in memory. Still
		// far below parsed-ciphertext residency, but not disk-bounded.
		s.mem = make([]byte, n*spillSlot)
		return s, nil
	}
	// Unlink immediately: the kernel reclaims the blocks when the file
	// handle closes, however the process exits.
	os.Remove(f.Name())
	s.file = f
	return s, nil
}

// write stores cts at element offset off.
func (s *spill) write(off int, cts []elgamal.Ciphertext) error {
	if off < 0 || off+len(cts) > s.n {
		return fmt.Errorf("psc: spill write [%d,%d) out of range %d", off, off+len(cts), s.n)
	}
	buf := make([]byte, 0, len(cts)*spillSlot)
	for _, c := range cts {
		n := len(buf)
		buf = append(buf, 0)
		buf = c.AppendTo(buf)
		buf[n] = byte(len(buf) - n - 1)
		for len(buf)-n < spillSlot {
			buf = append(buf, 0)
		}
	}
	if s.file != nil {
		_, err := s.file.WriteAt(buf, int64(off)*spillSlot)
		return err
	}
	copy(s.mem[off*spillSlot:], buf)
	return nil
}

// readRange returns the count elements starting at off.
func (s *spill) readRange(off, count int) ([]elgamal.Ciphertext, error) {
	if off < 0 || count < 0 || off+count > s.n {
		return nil, fmt.Errorf("psc: spill read [%d,%d) out of range %d", off, off+count, s.n)
	}
	raw, err := s.raw(int64(off)*spillSlot, count*spillSlot)
	if err != nil {
		return nil, err
	}
	out := make([]elgamal.Ciphertext, 0, count)
	for i := 0; i < count; i++ {
		c, err := decodeSlot(raw[i*spillSlot:])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// readIndices gathers the elements at the given offsets — the strided
// read of a column pass. One slot is read per index; sequential writes
// leave the file hot in the page cache, so the gather costs syscalls,
// not seeks.
func (s *spill) readIndices(idx []int) ([]elgamal.Ciphertext, error) {
	out := make([]elgamal.Ciphertext, 0, len(idx))
	var slot [spillSlot]byte
	for _, i := range idx {
		if i < 0 || i >= s.n {
			return nil, fmt.Errorf("psc: spill index %d out of range %d", i, s.n)
		}
		if s.file != nil {
			if _, err := s.file.ReadAt(slot[:], int64(i)*spillSlot); err != nil {
				return nil, err
			}
		} else {
			copy(slot[:], s.mem[i*spillSlot:])
		}
		c, err := decodeSlot(slot[:])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// raw returns count bytes at byte offset pos, reusing the read buffer.
func (s *spill) raw(pos int64, count int) ([]byte, error) {
	if s.file == nil {
		return s.mem[pos : pos+int64(count)], nil
	}
	if cap(s.readBuf) < count {
		s.readBuf = make([]byte, count)
	}
	buf := s.readBuf[:count]
	if _, err := s.file.ReadAt(buf, pos); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// decodeSlot parses one fixed-size record.
func decodeSlot(b []byte) (elgamal.Ciphertext, error) {
	n := int(b[0])
	if n < 2 || n > spillSlot-1 {
		return elgamal.Ciphertext{}, fmt.Errorf("psc: corrupt spill slot (len %d)", n)
	}
	c, used, err := elgamal.ParseCiphertext(b[1 : 1+n])
	if err != nil {
		return elgamal.Ciphertext{}, fmt.Errorf("psc: corrupt spill slot: %w", err)
	}
	if used != n {
		return elgamal.Ciphertext{}, fmt.Errorf("psc: spill slot has %d trailing bytes", n-used)
	}
	return c, nil
}

// Close releases the backing storage. Safe to call more than once.
func (s *spill) Close() error {
	s.mem, s.readBuf = nil, nil
	if s.file == nil {
		return nil
	}
	f := s.file
	s.file = nil
	return f.Close()
}

// lockedSpill serializes a spill shared by concurrent readers (the
// tally's per-CP decrypt streams all walk the final vector) and makes
// closing safe while readers may still be in flight: a round-failure
// path can tear the spill down and any late reader gets an error, not
// a read of released storage.
type lockedSpill struct {
	mu     sync.Mutex
	sp     *spill
	closed bool
}

func (ls *lockedSpill) readRange(off, count int) ([]elgamal.Ciphertext, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return nil, fmt.Errorf("psc: spill closed")
	}
	return ls.sp.readRange(off, count)
}

// Close releases the underlying spill; subsequent reads error.
func (ls *lockedSpill) Close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.closed = true
	return ls.sp.Close()
}
