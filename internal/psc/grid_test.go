package psc

import (
	"math/rand"
	"testing"

	"repro/internal/elgamal"
)

func pkForTest() elgamal.Point { return elgamal.GenerateKey().PK }

func encryptBits(pk elgamal.Point, n int) []elgamal.Ciphertext {
	cts, _ := elgamal.BatchEncryptBits(pk, make([]bool, n))
	return cts
}

// TestGridGeometry checks the blocking invariants every shape must
// satisfy: blocks tile the vector exactly, emission offsets are
// consistent with block lengths, and prevBlockOf inverts outStart.
func TestGridGeometry(t *testing.T) {
	shapes := []struct{ n, block int }{
		{1, 4}, {4, 4}, {5, 4}, {16, 4}, {17, 4}, {19, 4}, {100, 7}, {1024, 64}, {65792, 1024},
	}
	for _, s := range shapes {
		g := newGrid(s.n, s.block)
		for p := 1; p <= 3; p++ {
			if g.rows == 1 && p > 1 {
				break
			}
			seen := make([]bool, s.n)
			emitted := 0
			for b := 0; b < g.blocks(p); b++ {
				if got := g.outStart(p, b); got != emitted {
					t.Fatalf("n=%d block=%d pass %d: outStart(%d)=%d, want %d", s.n, s.block, p, b, got, emitted)
				}
				for j := 0; j < g.blockLen(p, b); j++ {
					idx := g.inIndex(p, b, j)
					if idx < 0 || idx >= s.n || seen[idx] {
						t.Fatalf("n=%d block=%d pass %d: index %d repeated or out of range", s.n, s.block, p, idx)
					}
					seen[idx] = true
					if p > 1 {
						pb := g.prevBlockOf(p, idx)
						start := g.outStart(p-1, pb)
						if idx < start || idx >= start+g.blockLen(p-1, pb) {
							t.Fatalf("n=%d block=%d pass %d: prevBlockOf(%d)=%d does not contain it", s.n, s.block, p, idx, pb)
						}
					}
				}
				emitted += g.blockLen(p, b)
			}
			if emitted != s.n {
				t.Fatalf("n=%d block=%d pass %d: blocks tile %d elements", s.n, s.block, p, emitted)
			}
		}
	}
}

// applyPasses runs the composed grid shuffle on an index vector with
// the given per-block permutation source, returning the composite
// mapping src index -> dst position.
func applyPasses(g grid, passes int, rng *rand.Rand) []int {
	vec := make([]int, g.n)
	for i := range vec {
		vec[i] = i
	}
	for p := 1; p <= passes; p++ {
		next := make([]int, 0, g.n)
		for b := 0; b < g.blocks(p); b++ {
			n := g.blockLen(p, b)
			blk := make([]int, n)
			for j := 0; j < n; j++ {
				blk[j] = vec[g.inIndex(p, b, j)]
			}
			rng.Shuffle(n, func(i, j int) { blk[i], blk[j] = blk[j], blk[i] })
			next = append(next, blk...)
		}
		vec = next
	}
	pos := make([]int, g.n)
	for dst, src := range vec {
		pos[src] = dst
	}
	return pos
}

// TestComposedPassesPermutationEquivalence is the whole-vector
// permutation-equivalence property test: composing per-block row and
// column passes must (a) always yield a permutation of the full
// vector, (b) give every element full positional support, and (c)
// produce per-(src,dst) marginals statistically close to the uniform
// 1/n — the "uniform-enough" requirement the round's privacy argument
// rests on, at the same soundness bound as the per-block arguments
// (each pass is exactly the permutation its block proofs attest).
func TestComposedPassesPermutationEquivalence(t *testing.T) {
	const trials = 6000
	shapes := []struct{ n, block int }{
		{24, 6},  // single-column groups (gcols = 1)
		{40, 10}, // grouped columns (gcols = 2)
	}
	rng := rand.New(rand.NewSource(20180901))
	for _, shape := range shapes {
		n := shape.n
		g := newGrid(n, shape.block)
		passes := g.passes(DefaultShufflePasses)
		if passes < 2 {
			t.Fatalf("grid %dx%d collapsed to one pass", n, shape.block)
		}
		counts := make([][]int, n)
		for i := range counts {
			counts[i] = make([]int, n)
		}
		for trial := 0; trial < trials; trial++ {
			pos := applyPasses(g, passes, rng)
			seen := make([]bool, n)
			for src, dst := range pos {
				if dst < 0 || dst >= n || seen[dst] {
					t.Fatalf("trial %d: not a permutation", trial)
				}
				seen[dst] = true
				counts[src][dst]++
			}
		}
		want := float64(trials) / float64(n)
		for src := range counts {
			for dst, c := range counts[src] {
				if c == 0 {
					t.Fatalf("n=%d: position (%d -> %d) unreachable: composed passes lack full support", n, src, dst)
				}
				// Binomial sd ≈ sqrt(want); ±40% is over 6 sd, far past
				// flake territory while still catching any systematic
				// bias (a one-pass shuffle concentrates whole rows and
				// fails this immediately).
				if ratio := float64(c) / want; ratio < 0.6 || ratio > 1.4 {
					t.Errorf("n=%d: position (%d -> %d) frequency %d is %.2f× uniform", n, src, dst, c, ratio)
				}
			}
		}
	}
	// A ragged grid must keep the same guarantees.
	g2 := newGrid(19, 6)
	for trial := 0; trial < 64; trial++ {
		pos := applyPasses(g2, g2.passes(DefaultShufflePasses), rng)
		seen := make([]bool, g2.n)
		for _, dst := range pos {
			if seen[dst] {
				t.Fatalf("ragged trial %d: not a permutation", trial)
			}
			seen[dst] = true
		}
	}
}

func TestSpillRoundTrip(t *testing.T) {
	joint := pkForTest()
	const n = 37
	sp, err := newSpill(n)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cts := encryptBits(joint, n)
	if err := sp.write(0, cts[:20]); err != nil {
		t.Fatal(err)
	}
	if err := sp.write(20, cts[20:]); err != nil {
		t.Fatal(err)
	}
	got, err := sp.readRange(5, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range got {
		if !c.Equal(cts[5+i]) {
			t.Fatalf("readRange element %d differs", i)
		}
	}
	idx := []int{36, 0, 7, 7, 19}
	gathered, err := sp.readIndices(idx)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range gathered {
		if !c.Equal(cts[idx[i]]) {
			t.Fatalf("readIndices element %d differs", i)
		}
	}
	if _, err := sp.readRange(30, 10); err == nil {
		t.Fatal("out-of-range read must fail")
	}
	if err := sp.write(30, cts[:10]); err == nil {
		t.Fatal("out-of-range write must fail")
	}
}
