package psc

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/spill"
	"repro/internal/wire"
)

// TestGatherSpillReadErrorAbortsRound injures the completed gather
// store just before the mix feeder starts re-streaming it, so the
// feeder's first read fails. The round must abort with the spill error
// — latched through the failer so every CP stream unwinds — rather
// than wedge the pipeline on a silently closed feed.
func TestGatherSpillReadErrorAbortsRound(t *testing.T) {
	gatherFeedTestHook = func(gs *gatherStore) {
		// Close the backing store out from under the feeder: every
		// subsequent readRange returns an error, the mid-re-stream
		// read-failure shape (ENOSPC, a reaped tmpfile, a bad disk).
		gs.sp.Close()
	}
	defer func() { gatherFeedTestHook = nil }()

	cfg := Config{Round: 21, Bins: 32, NoisePerCP: 2, ShuffleProofRounds: 2, NumDCs: 1, NumCPs: 2}
	tally, err := NewTally(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tsConns []wire.Messenger
	for i := 0; i < cfg.NumCPs; i++ {
		tsSide, cpSide := wire.Pipe()
		tsConns = append(tsConns, tsSide)
		cp := NewCP(fmt.Sprintf("cp-%d", i), cpSide, nil)
		go cp.Serve() // errors when the round aborts; ignored
	}
	tsSide, dcSide := wire.Pipe()
	tsConns = append(tsConns, tsSide)
	dc := NewDC("dc-0", dcSide)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := dc.Setup(); err != nil {
			return
		}
		dc.Observe("doomed")
		dc.Finish()
	}()

	_, err = tally.Run(tsConns)
	if err == nil {
		t.Fatal("round must fail when the gather spill dies mid-re-stream")
	}
	if !strings.Contains(err.Error(), "gather spill") {
		t.Fatalf("error %q does not name the gather spill", err)
	}
	for _, m := range tsConns {
		m.Close()
	}
	wg.Wait()
}

// TestRoundUsesConfiguredSpillDir runs a verified round with -spill-dir
// pointed at a writable directory and requires the gather table to be
// file-backed with no memory fallback recorded.
func TestRoundUsesConfiguredSpillDir(t *testing.T) {
	spill.SetDir(t.TempDir())
	defer spill.SetDir("")
	before := metrics.Default().Get("spill/mem-fallbacks")

	var inMemory *bool
	gatherFeedTestHook = func(gs *gatherStore) {
		v := gs.sp.st.InMemory()
		inMemory = &v
	}
	defer func() { gatherFeedTestHook = nil }()

	cfg := Config{Round: 22, Bins: 64, NoisePerCP: 2, ShuffleProofRounds: 2, NumDCs: 2, NumCPs: 2}
	res := runRound(t, cfg, func(dcs []*DC) {
		dcs[0].Observe("a")
		dcs[1].Observe("b")
	})
	if res.Reported > 2+2*cfg.NumCPs*cfg.NoisePerCP {
		t.Fatalf("reported %d bins", res.Reported)
	}
	if inMemory == nil || *inMemory {
		t.Fatal("gather table must be file-backed under a writable spill dir")
	}
	if after := metrics.Default().Get("spill/mem-fallbacks"); after != before {
		t.Fatalf("mem-fallbacks moved %g -> %g with a writable dir", before, after)
	}
}

// TestRoundSpillDirUnwritableFallsBack points -spill-dir at a path that
// cannot exist: every store falls back to memory, the fallback counter
// records it, and the round still completes correctly.
func TestRoundSpillDirUnwritableFallsBack(t *testing.T) {
	spill.SetDir("/proc/definitely/not/writable")
	defer spill.SetDir("")
	before := metrics.Default().Get("spill/mem-fallbacks")

	var inMemory *bool
	gatherFeedTestHook = func(gs *gatherStore) {
		v := gs.sp.st.InMemory()
		inMemory = &v
	}
	defer func() { gatherFeedTestHook = nil }()

	cfg := Config{Round: 23, Bins: 64, NoisePerCP: 0, ShuffleProofRounds: 2, NumDCs: 1, NumCPs: 2}
	res := runRound(t, cfg, func(dcs []*DC) {
		dcs[0].Observe("x")
		dcs[0].Observe("y")
	})
	if res.Reported != 2 {
		t.Fatalf("reported %d bins, want 2", res.Reported)
	}
	if inMemory == nil || !*inMemory {
		t.Fatal("gather table must fall back to memory under an unwritable spill dir")
	}
	if after := metrics.Default().Get("spill/mem-fallbacks"); after <= before {
		t.Fatalf("mem-fallbacks did not move: %g -> %g", before, after)
	}
}
