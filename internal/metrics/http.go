package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// HTTP pull endpoint for the ops registry, in expvar style: a
// long-running fleet is scraped instead of read post-mortem from the
// exit dump. Every daemon exposes it behind a -metrics-addr flag;
// GET /metrics returns the merged counter+gauge snapshot as a flat
// JSON object ordered by the encoder (scrapers treat it as a map),
// GET /metrics?format=text returns the same sorted "name value" lines
// Dump writes, and GET /metrics?format=prom — or any request whose
// Accept header names the Prometheus exposition format — returns the
// typed text exposition a stock Prometheus server scrapes.

// wantsProm reports whether the request negotiated the Prometheus text
// exposition: the explicit format=prom override, or an Accept header
// carrying the scraper's version=0.0.4 / OpenMetrics media types.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// Handler returns an http.Handler serving the merged snapshot of the
// given registries (later registries win on name collisions; pass
// Default() alone for the process-wide counters).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if wantsProm(r) {
			w.Header().Set("Content-Type", PromContentType)
			_ = WritePrometheus(w, regs...)
			return
		}
		merged := make(map[string]float64)
		for _, reg := range regs {
			for k, v := range reg.Snapshot() {
				merged[k] = v
			}
			for k, v := range reg.SnapshotGauges() {
				merged[k] = v
			}
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			tmp := NewRegistry()
			for k, v := range merged {
				tmp.Add(k, v)
			}
			_ = tmp.Dump(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(merged)
	})
}

// Serve starts the pull endpoint on addr (use ":0" for an ephemeral
// port), serving /metrics — and / for convenience — from the given
// registries. It returns the bound address and a closer; errors after
// startup only affect individual scrapes.
func Serve(addr string, regs ...*Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	h := Handler(regs...)
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
