package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"repro/internal/event"
)

func dirCircuit() *event.CircuitEnd {
	return &event.CircuitEnd{
		Kind:     event.CircuitDirectory,
		ClientIP: netip.MustParseAddr("192.0.2.1"),
	}
}

func TestEstimatorCountsOnlyDirectoryCircuits(t *testing.T) {
	e, err := NewEstimator(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.ConsensusShare = 1
	e.Observe(dirCircuit())
	e.Observe(&event.CircuitEnd{Kind: event.CircuitData})
	e.Observe(&event.ConnectionEnd{})
	e.Observe(&event.StreamEnd{})
	if e.Requests() != 1 {
		t.Fatalf("requests: %v", e.Requests())
	}
}

func TestConsensusShareScalesRequests(t *testing.T) {
	e, _ := NewEstimator(0.5)
	for i := 0; i < 100; i++ {
		e.Observe(dirCircuit())
	}
	if math.Abs(e.Requests()-100*e.ConsensusShare) > 1e-9 {
		t.Fatalf("requests %v, want %v", e.Requests(), 100*e.ConsensusShare)
	}
}

func TestDailyUsersFormula(t *testing.T) {
	e, _ := NewEstimator(0.25)
	e.ConsensusShare = 1
	for i := 0; i < 1000; i++ {
		e.Observe(dirCircuit())
	}
	// 1000 requests at 25% reporting = 4000 total; /10 per client = 400.
	users, err := e.DailyUsers(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(users-400) > 1e-9 {
		t.Fatalf("users: %v want 400", users)
	}
	twoDay, _ := e.DailyUsers(2)
	if math.Abs(twoDay-200) > 1e-9 {
		t.Fatalf("two-day users: %v want 200", twoDay)
	}
}

func TestEstimatorValidation(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		if _, err := NewEstimator(f); err == nil {
			t.Errorf("fraction %v must fail", f)
		}
	}
	e, _ := NewEstimator(1)
	if _, err := e.DailyUsers(0); err == nil {
		t.Fatal("zero days must fail")
	}
	e.RequestsPerClientDay = 0
	if _, err := e.DailyUsers(1); err == nil {
		t.Fatal("zero heuristic must fail")
	}
}

func TestUndercountFactor(t *testing.T) {
	if got := UndercountFactor(8.8e6, 2.2e6); math.Abs(got-4) > 1e-9 {
		t.Fatalf("undercount: %v", got)
	}
	if !math.IsInf(UndercountFactor(1, 0), 1) {
		t.Fatal("zero estimate must be infinite undercount")
	}
}

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.Inc("a/b")
	r.Add("a/b", 2.5)
	r.Add("z", 1)
	if got := r.Get("a/b"); got != 3.5 {
		t.Fatalf("a/b = %g, want 3.5", got)
	}
	if got := r.Get("missing"); got != 0 {
		t.Fatalf("missing = %g, want 0", got)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap["z"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a/b 3.5\nz 1\n" {
		t.Fatalf("dump = %q", b.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := r.Get("hits"); got != 8000 {
		t.Fatalf("hits = %g, want 8000", got)
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	name := "test/default-registry-probe"
	before := Default().Get(name)
	Default().Inc(name)
	if got := Default().Get(name); got != before+1 {
		t.Fatalf("default registry did not accumulate: %g -> %g", before, got)
	}
}

// TestMetricsScrape covers the HTTP pull endpoint: counters fed into a
// registry must come back over a real scrape, in both JSON and text
// form, and later registries must win merged-name collisions.
func TestMetricsScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Add("engine/psc/round-seconds", 12.5)
	reg.Inc("psc/verify-failures")
	override := NewRegistry()
	override.Add("psc/verify-failures", 3)

	addr, closeFn, err := Serve("127.0.0.1:0", reg, override)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["engine/psc/round-seconds"] != 12.5 {
		t.Fatalf("round-seconds = %v", got["engine/psc/round-seconds"])
	}
	if got["psc/verify-failures"] != 3 {
		t.Fatalf("merged counter = %v, want the later registry's 3", got["psc/verify-failures"])
	}

	resp2, err := http.Get("http://" + addr + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := "engine/psc/round-seconds 12.5\npsc/verify-failures 3\n"
	if string(body) != want {
		t.Fatalf("text dump %q, want %q", body, want)
	}
}
