// Package metrics has two halves that share a name for two senses of
// "metrics".
//
// The first (metrics.go) implements the Tor Metrics Portal's *indirect*
// user estimation technique as the baseline the paper argues against
// (§7): participating directory mirrors count directory requests, the
// total is extrapolated by the participating fraction, and users are
// inferred by assuming each client fetches the consensus about ten
// times a day (Loesing et al., FC 2010). The paper's §5.1 finding is
// that this heuristic undercounts daily users by roughly 4x against
// PSC's direct unique-client measurement; running both estimators over
// the same simulated network reproduces the gap.
//
// The second (ops.go) is the operational telemetry of the deployed
// fleet: Registry is a concurrency-safe named-counter registry the
// engine and protocol tallies record into — per-round wall-clock and
// stream bytes, verification failures, and the churn counters
// (parties-disconnected / rejoined / rejected, rounds-degraded,
// parties-absent). Default() is the process-wide registry the tally
// daemon dumps on exit.
//
// # Invariants
//
//   - Registry operations are safe for concurrent use and never fail:
//     recording telemetry must not be able to break a round.
//   - Counter names are slash-namespaced ("engine/<label>/...",
//     "psc/..."); Dump emits them sorted, one "name value" per line.
package metrics
