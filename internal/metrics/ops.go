package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Operational counters for a running measurement fleet. Rounds overlap
// under the multi-round engine, so aggregate observability — per-round
// wall-clock, bytes moved per stream, verification failures — lives in
// a Registry the engine and protocol layers feed and the tally daemon
// dumps. This is deliberately tiny: monotonic float counters with a
// sorted text dump, enough to watch a busy fleet without growing a
// telemetry dependency.

// Registry is a set of named monotonic counters plus last-value gauges.
// The zero value is not usable; call NewRegistry. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
	}
}

// Add increases the named counter by v (which may be fractional —
// wall-clock seconds are a counter too).
func (r *Registry) Add(name string, v float64) {
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Inc increases the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set records the named gauge's current value — a level, not an
// accumulation: last write wins (e.g. bins in the active round, peak
// heap of the last tally). Gauges live in a separate namespace from
// counters so exporters can type them correctly.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Get returns the counter's current value (zero if never touched).
func (r *Registry) Get(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the gauge's current value (zero if never set).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Snapshot copies the current counter values.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// SnapshotGauges copies the current gauge values.
func (r *Registry) SnapshotGauges() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Dump writes "name value" lines in sorted order, counters and gauges
// merged (a name collision between the two shows the gauge).
func (r *Registry) Dump(w io.Writer) error {
	snap := r.Snapshot()
	for k, v := range r.SnapshotGauges() {
		snap[k] = v
	}
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", n, snap[n]); err != nil {
			return err
		}
	}
	return nil
}

// defaultRegistry collects counters from layers that have no natural
// place to thread a registry through (e.g. proof verification deep in
// the PSC tally pipeline). The engine records here too unless
// redirected with SetMetrics; dumpers that install their own registry
// must also dump this one or the deep-layer counters go unseen.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
