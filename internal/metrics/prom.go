package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the ops
// registry, so a fleet can be scraped by a stock Prometheus server
// instead of a bespoke JSON poller. Registry names use '/' and '-' as
// separators; exposition rewrites every character outside
// [a-zA-Z0-9_:] to '_' and prefixes names that would start with a
// digit, which keeps the mapping stable and collision-free for the
// names this codebase emits.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry counter name into a valid Prometheus
// metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the merged snapshot of the registries in the
// Prometheus text format: counters typed counter, gauges typed gauge,
// sorted by exposition name. Later registries win name collisions,
// matching Handler's merge order.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	counters := make(map[string]float64)
	gauges := make(map[string]float64)
	for _, reg := range regs {
		for k, v := range reg.Snapshot() {
			counters[promName(k)] = v
		}
		for k, v := range reg.SnapshotGauges() {
			gauges[promName(k)] = v
		}
	}
	return writePromFamilies(w, []promFamily{
		{kind: "counter", vals: counters},
		{kind: "gauge", vals: gauges},
	})
}

type promFamily struct {
	kind string
	vals map[string]float64
}

func writePromFamilies(w io.Writer, fams []promFamily) error {
	for _, fam := range fams {
		names := make([]string, 0, len(fam.vals))
		for n := range fam.vals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", n, fam.kind, n, fam.vals[n]); err != nil {
				return err
			}
		}
	}
	return nil
}
