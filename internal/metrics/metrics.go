package metrics

import (
	"errors"
	"math"

	"repro/internal/event"
)

// Estimator accumulates directory-request observations the way a
// statistics-reporting directory mirror does.
type Estimator struct {
	// ReportingFraction is the share of directory capacity that
	// participates in statistics reporting.
	ReportingFraction float64
	// RequestsPerClientDay is the heuristic constant: assumed consensus
	// fetches per client per day (~10 in the deployed pipeline).
	RequestsPerClientDay float64
	// ConsensusShare is the fraction of directory circuits that carry a
	// consensus download — the only request type the reporting pipeline
	// counts. Most directory circuits fetch relay descriptors or retry
	// cached documents and never reach the counted endpoint; this
	// mismatch between the heuristic's assumed fetch rate and clients'
	// actual counted fetches is what produces the systematic
	// undercount the paper measures (§5.1, §7).
	ConsensusShare float64

	requests float64
}

// NewEstimator returns an estimator with the deployed pipeline's
// constants.
func NewEstimator(reportingFraction float64) (*Estimator, error) {
	if !(reportingFraction > 0) || reportingFraction > 1 {
		return nil, errors.New("metrics: reporting fraction outside (0,1]")
	}
	return &Estimator{
		ReportingFraction:    reportingFraction,
		RequestsPerClientDay: 10,
		ConsensusShare:       0.11,
	}, nil
}

// Observe consumes a guard-side event stream: a directory circuit
// contributes its consensus-download share to the counted requests.
// Non-directory events are ignored.
func (e *Estimator) Observe(ev event.Event) {
	c, ok := ev.(*event.CircuitEnd)
	if !ok || c.Kind != event.CircuitDirectory {
		return
	}
	e.requests += e.ConsensusShare
}

// Requests returns the raw observed request count.
func (e *Estimator) Requests() float64 { return e.requests }

// DailyUsers returns the Metrics-style estimate: observed requests,
// scaled up by the reporting fraction, divided by the per-client
// heuristic and the number of observed days.
func (e *Estimator) DailyUsers(days int) (float64, error) {
	if days <= 0 {
		return 0, errors.New("metrics: need at least one day")
	}
	if e.RequestsPerClientDay <= 0 {
		return 0, errors.New("metrics: non-positive requests-per-client heuristic")
	}
	total := e.requests / e.ReportingFraction
	return total / e.RequestsPerClientDay / float64(days), nil
}

// UndercountFactor compares a direct unique-client measurement with
// this estimator's output: the paper's headline ~4x.
func UndercountFactor(directUsers, metricsUsers float64) float64 {
	if metricsUsers <= 0 {
		return math.Inf(1)
	}
	return directUsers / metricsUsers
}
