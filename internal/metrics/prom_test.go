package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine/psc/round-seconds": "engine_psc_round_seconds",
		"spill/mem-fallbacks":      "spill_mem_fallbacks",
		"already_fine:name":        "already_fine:name",
		"7th":                      "_7th",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	r.Set("g", 5)
	r.Set("g", 2.5) // last write wins, no accumulation
	r.Inc("c")
	if got := r.Gauge("g"); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	if got := r.Gauge("missing"); got != 0 {
		t.Fatalf("missing gauge = %g", got)
	}
	if snap := r.Snapshot(); len(snap) != 1 {
		t.Fatalf("counters snapshot leaked gauges: %v", snap)
	}
	if snap := r.SnapshotGauges(); len(snap) != 1 || snap["g"] != 2.5 {
		t.Fatalf("gauge snapshot = %v", snap)
	}
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "c 1\ng 2.5\n" {
		t.Fatalf("dump = %q", b.String())
	}
}

// TestPrometheusScrape covers the typed exposition over a real HTTP
// scrape: counters typed counter, gauges typed gauge, names sanitized,
// reachable both by the format=prom override and by the Accept header a
// Prometheus server actually sends.
func TestPrometheusScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Add("engine/psc/round-seconds", 12.5)
	reg.Set("engine/psc/last-round-ok", 1)

	addr, closeFn, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	get := func(url, accept string) string {
		t.Helper()
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
			t.Fatalf("content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get("http://"+addr+"/metrics?format=prom", "")
	for _, want := range []string{
		"# TYPE engine_psc_round_seconds counter\nengine_psc_round_seconds 12.5\n",
		"# TYPE engine_psc_last_round_ok gauge\nengine_psc_last_round_ok 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// The stock Prometheus scraper negotiates via Accept, no query param.
	negotiated := get("http://"+addr+"/metrics",
		"application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if negotiated != body {
		t.Fatalf("Accept negotiation differs from format=prom:\n%s\nvs\n%s", negotiated, body)
	}
}
