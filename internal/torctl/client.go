package torctl

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Config describes a control-port connection to one instrumented relay.
type Config struct {
	// Addr is the control-port address (host:port).
	Addr string
	// CookiePath is the auth cookie file. Empty means use the path the
	// relay advertises in PROTOCOLINFO (the usual Tor deployment: the
	// relay owns the cookie file and tells controllers where it is).
	CookiePath string
	// Password authenticates via HASHEDPASSWORD when the relay offers
	// it; it takes precedence over cookies when both are configured.
	Password string
	// Events is the SETEVENTS subscription; nil means AllEvents.
	Events []string
	// ReconnectMin/Max bound the exponential backoff between reconnect
	// attempts. Zero values select 250ms and 15s.
	ReconnectMin, ReconnectMax time.Duration
	// MaxDialFailures ends the client after this many consecutive
	// failed connection attempts; 0 means retry forever (a relay in a
	// months-long epoch may be down for days).
	MaxDialFailures int
	// DialTimeout bounds each dial attempt; zero selects 10s.
	DialTimeout time.Duration
	// Dialer overrides the TCP dialer (tests).
	Dialer func() (net.Conn, error)
	// Logf, when set, receives connection-lifecycle messages.
	Logf func(format string, args ...any)
}

func (cfg *Config) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// Client is a control-port connection that survives relay and network
// churn: any read or connect error short of an authentication failure
// triggers reconnection with exponential backoff, and the SETEVENTS
// subscription is re-established on every new connection.
type Client struct {
	cfg   Config
	lines chan string
	stop  chan struct{}

	mu         sync.Mutex
	err        error
	conn       net.Conn
	reconnects int
	closeOnce  sync.Once
}

// Dial connects, authenticates, and subscribes; it returns only after
// the first session is fully established, so configuration errors (bad
// address, bad credentials) surface immediately. The returned client
// then delivers event lines on Lines until Close or a terminal error.
func Dial(cfg Config) (*Client, error) {
	if cfg.Events == nil {
		cfg.Events = AllEvents
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 250 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 15 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	c := &Client{
		cfg:   cfg,
		lines: make(chan string, 256),
		stop:  make(chan struct{}),
	}
	conn, br, err := c.connect()
	if err != nil {
		return nil, err
	}
	go c.run(conn, br)
	return c, nil
}

// Lines delivers the payload of each asynchronous 650 event line (the
// text after "650 "). The channel closes when the client ends; Err
// tells why (nil after a clean Close or trace end).
func (c *Client) Lines() <-chan string { return c.lines }

// Err reports the terminal error, nil while running or after Close.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Reconnects reports how many times the client re-established its
// session after losing one.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close ends the client: the current connection drops and Lines closes.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
	})
}

func (c *Client) closed() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// finish latches the terminal error and closes Lines.
func (c *Client) finish(err error) {
	c.mu.Lock()
	if c.err == nil && !c.closed() {
		c.err = err
	}
	c.mu.Unlock()
	close(c.lines)
}

// run pumps event lines, reconnecting across connection failures.
func (c *Client) run(conn net.Conn, br *bufio.Reader) {
	for {
		err := c.pump(br)
		conn.Close()
		if c.closed() {
			c.finish(nil)
			return
		}
		c.cfg.logf("torctl: connection to %s lost: %v; reconnecting", c.cfg.Addr, err)
		conn, br, err = c.reconnect()
		if err != nil {
			c.finish(err)
			return
		}
	}
}

// pump reads lines from one established session until it fails,
// forwarding 650 event payloads. Non-650 lines between events are
// tolerated and dropped (a relay may volunteer status lines).
func (c *Client) pump(br *bufio.Reader) error {
	for {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if len(line) < 4 || line[:3] != "650" {
			continue
		}
		switch line[3] {
		case ' ':
			select {
			case c.lines <- line[4:]:
			case <-c.stop:
				return ErrClosed
			}
		case '+':
			// An async data-block reply: drain the block so framing
			// stays aligned; the PRIVCOUNT dialect never uses these.
			if _, err := readDataBlock(br); err != nil {
				return err
			}
		}
		// "650-" continuation lines carry no standalone event; skip.
	}
}

// reconnect retries connect with exponential backoff until it
// succeeds, the client closes, or the failure budget is spent.
func (c *Client) reconnect() (net.Conn, *bufio.Reader, error) {
	delay := c.cfg.ReconnectMin
	failures := 0
	for {
		select {
		case <-time.After(delay):
		case <-c.stop:
			return nil, nil, ErrClosed
		}
		conn, br, err := c.connect()
		if err == nil {
			c.mu.Lock()
			c.reconnects++
			n := c.reconnects
			c.mu.Unlock()
			c.cfg.logf("torctl: reconnected to %s (reconnect %d)", c.cfg.Addr, n)
			return conn, br, nil
		}
		if errors.Is(err, ErrAuthFailed) {
			return nil, nil, err // credentials will not improve with retries
		}
		failures++
		if c.cfg.MaxDialFailures > 0 && failures >= c.cfg.MaxDialFailures {
			return nil, nil, fmt.Errorf("torctl: giving up after %d failed reconnect attempts: %w", failures, err)
		}
		c.cfg.logf("torctl: reconnect to %s failed (%v); next attempt in %v", c.cfg.Addr, err, delay*2)
		if delay *= 2; delay > c.cfg.ReconnectMax {
			delay = c.cfg.ReconnectMax
		}
	}
}

// connect dials and runs the synchronous session setup: PROTOCOLINFO,
// AUTHENTICATE, SETEVENTS. No 650 can arrive before SETEVENTS is
// acknowledged, so replies are read inline.
func (c *Client) connect() (net.Conn, *bufio.Reader, error) {
	var conn net.Conn
	var err error
	if c.cfg.Dialer != nil {
		conn, err = c.cfg.Dialer()
	} else {
		conn, err = net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	}
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	if c.closed() {
		conn.Close()
		return nil, nil, ErrClosed
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	if err := c.handshake(conn, br); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, br, nil
}

// request writes one command line and reads its reply.
func request(conn net.Conn, br *bufio.Reader, cmd string) (Reply, error) {
	if _, err := conn.Write([]byte(cmd + "\r\n")); err != nil {
		return Reply{}, err
	}
	return ReadReply(br)
}

func (c *Client) handshake(conn net.Conn, br *bufio.Reader) error {
	rep, err := request(conn, br, "PROTOCOLINFO 1")
	if err != nil {
		return fmt.Errorf("torctl: PROTOCOLINFO: %w", err)
	}
	if !rep.IsOK() {
		return fmt.Errorf("torctl: PROTOCOLINFO refused: %d %s", rep.Status, rep.Text())
	}
	methods, cookieFile := parseProtocolInfo(rep)

	authCmd, err := c.chooseAuth(conn, br, methods, cookieFile)
	if err != nil {
		return err
	}
	rep, err = request(conn, br, authCmd)
	if err != nil {
		return fmt.Errorf("torctl: AUTHENTICATE: %w", err)
	}
	if !rep.IsOK() {
		return fmt.Errorf("%w: %d %s", ErrAuthFailed, rep.Status, rep.Text())
	}

	rep, err = request(conn, br, "SETEVENTS "+strings.Join(c.cfg.Events, " "))
	if err != nil {
		return fmt.Errorf("torctl: SETEVENTS: %w", err)
	}
	if !rep.IsOK() {
		return fmt.Errorf("torctl: SETEVENTS refused: %d %s", rep.Status, rep.Text())
	}
	return nil
}

// parseProtocolInfo extracts the advertised auth methods and cookie
// file path from a PROTOCOLINFO reply.
func parseProtocolInfo(rep Reply) (methods map[string]bool, cookieFile string) {
	methods = make(map[string]bool)
	for _, line := range rep.Lines {
		rest, ok := strings.CutPrefix(line, "AUTH ")
		if !ok {
			continue
		}
		kv, _, err := splitFields(rest)
		if err != nil {
			continue
		}
		for _, m := range strings.Split(kv["METHODS"], ",") {
			methods[m] = true
		}
		if f := kv["COOKIEFILE"]; f != "" {
			cookieFile = f
		}
	}
	return methods, cookieFile
}

// chooseAuth picks the strongest workable method and returns the
// AUTHENTICATE command, running the AUTHCHALLENGE exchange for
// SAFECOOKIE.
func (c *Client) chooseAuth(conn net.Conn, br *bufio.Reader, methods map[string]bool, advertisedCookie string) (string, error) {
	if c.cfg.Password != "" && methods["HASHEDPASSWORD"] {
		return "AUTHENTICATE " + quoteString(c.cfg.Password), nil
	}
	cookiePath := c.cfg.CookiePath
	if cookiePath == "" {
		cookiePath = advertisedCookie
	}
	if cookiePath != "" && (methods["SAFECOOKIE"] || methods["COOKIE"]) {
		cookie, err := os.ReadFile(cookiePath)
		if err != nil {
			return "", fmt.Errorf("torctl: read cookie: %w", err)
		}
		if len(cookie) != CookieLen {
			return "", fmt.Errorf("torctl: cookie file %s holds %d bytes, want %d", cookiePath, len(cookie), CookieLen)
		}
		if methods["SAFECOOKIE"] {
			return c.safeCookieAuth(conn, br, cookie)
		}
		return "AUTHENTICATE " + hex.EncodeToString(cookie), nil
	}
	if methods["NULL"] {
		return "AUTHENTICATE", nil
	}
	return "", fmt.Errorf("torctl: no usable auth method (relay offers %v)", keys(methods))
}

// safeCookieAuth runs the AUTHCHALLENGE exchange and returns the final
// AUTHENTICATE command. It verifies the server hash, so a fake relay
// that does not know the cookie is rejected before we prove anything.
func (c *Client) safeCookieAuth(conn net.Conn, br *bufio.Reader, cookie []byte) (string, error) {
	clientNonce := make([]byte, 32)
	if _, err := rand.Read(clientNonce); err != nil {
		return "", err
	}
	rep, err := request(conn, br, "AUTHCHALLENGE SAFECOOKIE "+hex.EncodeToString(clientNonce))
	if err != nil {
		return "", fmt.Errorf("torctl: AUTHCHALLENGE: %w", err)
	}
	if !rep.IsOK() {
		return "", fmt.Errorf("%w: AUTHCHALLENGE refused: %d %s", ErrAuthFailed, rep.Status, rep.Text())
	}
	rest, ok := strings.CutPrefix(rep.Text(), "AUTHCHALLENGE ")
	if !ok {
		return "", fmt.Errorf("torctl: malformed AUTHCHALLENGE reply %q", rep.Text())
	}
	kv, _, err := splitFields(rest)
	if err != nil {
		return "", fmt.Errorf("torctl: malformed AUTHCHALLENGE reply: %v", err)
	}
	serverHash, err1 := hex.DecodeString(kv["SERVERHASH"])
	serverNonce, err2 := hex.DecodeString(kv["SERVERNONCE"])
	if err1 != nil || err2 != nil || len(serverNonce) == 0 {
		return "", fmt.Errorf("torctl: malformed AUTHCHALLENGE reply %q", rep.Text())
	}
	if !hashesEqual(serverHash, SafeCookieServerHash(cookie, clientNonce, serverNonce)) {
		return "", fmt.Errorf("%w: relay failed the SAFECOOKIE server-hash check", ErrAuthFailed)
	}
	clientHash := SafeCookieClientHash(cookie, clientNonce, serverNonce)
	return "AUTHENTICATE " + hex.EncodeToString(clientHash), nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
