package torctl

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Control-protocol line layer, shared by the client and the mock relay.
//
// A reply is one or more CRLF-terminated lines "NNNsText" where NNN is
// a 3-digit status and s is '-' (more lines follow), '+' (a data block
// follows, terminated by a lone "."), or ' ' (final line). Asynchronous
// events are replies with status 650 and may arrive at any time after
// SETEVENTS.

// maxLineLen bounds a single control-port line; a peer that exceeds it
// is hostile or broken. Real event lines are a few hundred bytes.
const maxLineLen = 1 << 16

// Reply is one parsed control-protocol reply.
type Reply struct {
	Status int
	// Lines holds the text of each reply line, separator stripped.
	Lines []string
	// Data holds the payload of '+' data blocks, in order, dot-unstuffed.
	Data []string
}

// Text returns the first line of the reply (the conventional
// human-readable summary).
func (r Reply) Text() string {
	if len(r.Lines) == 0 {
		return ""
	}
	return r.Lines[0]
}

// IsOK reports whether the reply is a 2xx success.
func (r Reply) IsOK() bool { return r.Status >= 200 && r.Status < 300 }

// IsAsync reports whether the reply is an asynchronous 650 event.
func (r Reply) IsAsync() bool { return r.Status == 650 }

// readLine reads one CRLF- (or, tolerantly, LF-) terminated line. The
// length cap is enforced while reading — a peer streaming an endless
// unterminated line errors out at ~maxLineLen instead of growing an
// unbounded buffer. The terminator is stripped.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(buf) > maxLineLen {
				return "", fmt.Errorf("torctl: control line exceeds %d bytes", maxLineLen)
			}
			continue
		}
		return "", err
	}
	if len(buf) > maxLineLen {
		return "", fmt.Errorf("torctl: control line exceeds %d bytes", maxLineLen)
	}
	line := strings.TrimSuffix(string(buf), "\n")
	return strings.TrimSuffix(line, "\r"), nil
}

// ReadReply reads one complete (possibly multi-line) reply. Truncated
// or malformed replies yield an error, never a partial success.
func ReadReply(br *bufio.Reader) (Reply, error) {
	var rep Reply
	for {
		line, err := readLine(br)
		if err != nil {
			return Reply{}, err
		}
		if len(line) < 4 {
			return Reply{}, fmt.Errorf("torctl: short reply line %q", line)
		}
		status, err := strconv.Atoi(line[:3])
		if err != nil || status < 100 || status > 999 {
			return Reply{}, fmt.Errorf("torctl: bad status in reply line %q", line)
		}
		if rep.Lines == nil {
			rep.Status = status
		} else if status != rep.Status {
			return Reply{}, fmt.Errorf("torctl: status changed mid-reply (%d then %d)", rep.Status, status)
		}
		sep, text := line[3], line[4:]
		rep.Lines = append(rep.Lines, text)
		switch sep {
		case ' ':
			return rep, nil
		case '-':
			// more lines follow
		case '+':
			data, err := readDataBlock(br)
			if err != nil {
				return Reply{}, err
			}
			rep.Data = append(rep.Data, data)
		default:
			return Reply{}, fmt.Errorf("torctl: bad reply separator %q in %q", sep, line)
		}
	}
}

// readDataBlock consumes a '+' data block up to the terminating ".",
// undoing dot-stuffing.
func readDataBlock(br *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		line, err := readLine(br)
		if err != nil {
			return "", fmt.Errorf("torctl: truncated data block: %w", err)
		}
		if line == "." {
			return b.String(), nil
		}
		line = strings.TrimPrefix(line, ".")
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(line)
		if b.Len() > maxLineLen {
			return "", fmt.Errorf("torctl: data block exceeds %d bytes", maxLineLen)
		}
	}
}

// --- keyword=value fields ---

// needsQuotes reports whether a value must travel as a QuotedString.
func needsQuotes(v string) bool {
	if v == "" {
		return false
	}
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case ' ', '"', '\\', '\r', '\n':
			return true
		}
	}
	return false
}

// appendKV appends ` Key=Value` to b, quoting the value when needed.
func appendKV(b []byte, key, val string) []byte {
	b = append(b, ' ')
	b = append(b, key...)
	b = append(b, '=')
	if !needsQuotes(val) {
		return append(b, val...)
	}
	b = append(b, '"')
	for i := 0; i < len(val); i++ {
		switch c := val[i]; c {
		case '"', '\\':
			b = append(b, '\\', c)
		case '\r':
			b = append(b, '\\', 'r')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// quoteString renders s as a QuotedString unconditionally (passwords
// must always travel quoted).
func quoteString(s string) string {
	b := appendKV(make([]byte, 0, len(s)+8), "q", s)
	if len(b) == 3 || b[3] != '"' { // value did not need quoting; force it
		return `"` + string(b[3:]) + `"`
	}
	return string(b[3:])
}

// splitFields tokenizes the tail of an event line into Key=Value pairs,
// honoring QuotedString values. Later duplicates of a key win, matching
// control-spec practice. Tokens without '=' are returned in bare.
func splitFields(s string) (kv map[string]string, bare []string, err error) {
	kv = make(map[string]string, 8)
	i := 0
	for i < len(s) {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) {
			break
		}
		// key
		start := i
		for i < len(s) && s[i] != '=' && s[i] != ' ' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			bare = append(bare, s[start:i])
			continue
		}
		key := s[start:i]
		i++ // '='
		if key == "" {
			return nil, nil, fmt.Errorf("torctl: empty key in fields %q", s)
		}
		// value
		if i < len(s) && s[i] == '"' {
			val, rest, err := unquote(s[i:])
			if err != nil {
				return nil, nil, err
			}
			kv[key] = val
			i = len(s) - len(rest)
			if len(rest) > 0 && rest[0] != ' ' {
				return nil, nil, fmt.Errorf("torctl: garbage after quoted value of %s", key)
			}
		} else {
			vstart := i
			for i < len(s) && s[i] != ' ' {
				i++
			}
			kv[key] = s[vstart:i]
		}
	}
	return kv, bare, nil
}

// unquote parses a leading QuotedString and returns the value and the
// unconsumed remainder.
func unquote(s string) (val, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("torctl: not a quoted string: %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("torctl: dangling escape in %q", s)
			}
			switch e := s[i]; e {
			case 'r':
				b.WriteByte('\r')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(e)
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("torctl: unterminated quoted string: %q", s)
}
