package torctl

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/event"
)

// MockRelay is a mock instrumented relay: a control-port server that
// authenticates controllers exactly as a PrivCount-patched Tor would
// (PROTOCOLINFO, COOKIE / SAFECOOKIE / HASHEDPASSWORD) and replays a
// trace of simulator events as 650 PRIVCOUNT_* lines. It serves two
// jobs: the test double for the torctl client, and — via cmd/mockrelay
// — a standalone stand-in relay for deployment rehearsals.
//
// The trace is held in memory with a single replay cursor: a
// controller that reconnects resumes where the previous connection
// stopped, so a mid-feed disconnect loses at most the line in flight.
// That mirrors the single-controller relationship of a real DC to its
// relay; concurrent controllers would share the cursor.
type MockRelay struct {
	cfg MockConfig

	mu     sync.Mutex
	cond   *sync.Cond
	trace  []event.Event
	pos    int
	ended  bool
	closed bool

	written   int  // event lines delivered across all connections
	dropped   bool // the one DropAfter disconnect has fired
	liveConns int
	doneSent  int // how many connections received PRIVCOUNT_DONE
	conns     map[net.Conn]bool

	ln net.Listener
}

// MockConfig configures a MockRelay.
type MockConfig struct {
	// Cookie enables COOKIE and SAFECOOKIE auth (must be CookieLen
	// bytes). The caller owns writing it to a cookie file.
	Cookie []byte
	// CookiePath is advertised in PROTOCOLINFO as COOKIEFILE, the way
	// a real relay points controllers at its cookie.
	CookiePath string
	// Password enables HASHEDPASSWORD auth (plain comparison — the
	// mock stores the secret, not a hash).
	Password string
	// EpochUnixNano is the wall-clock instant of simtime 0 on emitted
	// lines. Zero selects 2018-01-01T00:00:00Z, the paper's study year.
	EpochUnixNano int64
	// DropAfter, when positive, abruptly closes the controller
	// connection after that many event lines have been delivered —
	// once. The replay cursor survives, so a reconnecting client
	// resumes the feed: this is the churn drill of the integration
	// tests.
	DropAfter int
	// Logf, when set, receives connection-lifecycle messages.
	Logf func(format string, args ...any)
}

// defaultEpochUnixNano is 2018-01-01T00:00:00Z.
const defaultEpochUnixNano = 1514764800 * int64(1e9)

// GenerateCookie returns a fresh random control-auth cookie.
func GenerateCookie() ([]byte, error) {
	c := make([]byte, CookieLen)
	if _, err := rand.Read(c); err != nil {
		return nil, err
	}
	return c, nil
}

// NewMockRelay returns a mock relay with an empty trace.
func NewMockRelay(cfg MockConfig) (*MockRelay, error) {
	if cfg.Cookie != nil && len(cfg.Cookie) != CookieLen {
		return nil, fmt.Errorf("torctl: mock cookie is %d bytes, want %d", len(cfg.Cookie), CookieLen)
	}
	if cfg.EpochUnixNano == 0 {
		cfg.EpochUnixNano = defaultEpochUnixNano
	}
	m := &MockRelay{cfg: cfg, conns: make(map[net.Conn]bool)}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

func (m *MockRelay) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Feed appends one event to the replay trace and wakes streaming
// connections. Safe to call while serving.
func (m *MockRelay) Feed(ev event.Event) {
	m.mu.Lock()
	if !m.ended {
		m.trace = append(m.trace, ev)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// End marks the trace complete: once a connection has streamed every
// event it emits the PRIVCOUNT_DONE marker.
func (m *MockRelay) End() {
	m.mu.Lock()
	m.ended = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Listen binds addr and serves controllers in the background.
func (m *MockRelay) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.ln = ln
	m.mu.Unlock()
	go m.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts controller connections until the listener closes.
func (m *MockRelay) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go m.serveConn(conn)
	}
}

// Close stops the listener and tears down every live connection.
func (m *MockRelay) Close() {
	m.mu.Lock()
	m.closed = true
	ln := m.ln
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Delivered reports how many event lines have been written to
// controllers in total.
func (m *MockRelay) Delivered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// WaitIdle blocks until the trace has ended, at least one controller
// received the PRIVCOUNT_DONE marker, and no connections remain — the
// point at which a standalone mock relay can exit. Returns immediately
// if the relay is closed.
func (m *MockRelay) WaitIdle() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.closed && !(m.ended && m.doneSent > 0 && m.liveConns == 0) {
		m.cond.Wait()
	}
}

// mockConn is the per-connection controller state.
type mockConn struct {
	m    *MockRelay
	conn net.Conn

	wmu sync.Mutex // interleaves command replies with event lines

	mu            sync.Mutex
	authed        bool
	subscribed    map[string]bool
	streaming     bool
	gone          bool
	safeClientN   []byte
	safeServerN   []byte
	challengeSent bool
}

func (m *MockRelay) serveConn(conn net.Conn) {
	c := &mockConn{m: m, conn: conn}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.liveConns++
	m.conns[conn] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.liveConns--
		delete(m.conns, conn)
		m.mu.Unlock()
		m.cond.Broadcast()
	}()
	defer c.markGone()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<14)
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		if !c.dispatch(line) {
			return
		}
	}
}

// markGone flags the connection dead and wakes its streamer.
func (c *mockConn) markGone() {
	c.mu.Lock()
	c.gone = true
	c.mu.Unlock()
	c.m.cond.Broadcast()
}

func (c *mockConn) reply(lines ...string) bool {
	var b []byte
	for i, l := range lines {
		sep := byte(' ')
		if i < len(lines)-1 {
			sep = '-'
		}
		b = append(b, l[:3]...)
		b = append(b, sep)
		b = append(b, l[4:]...)
		b = append(b, '\r', '\n')
	}
	c.wmu.Lock()
	_, err := c.conn.Write(b)
	c.wmu.Unlock()
	return err == nil
}

// dispatch handles one command line; false ends the connection.
func (c *mockConn) dispatch(line string) bool {
	cmd, rest, _ := strings.Cut(strings.TrimSpace(line), " ")
	c.mu.Lock()
	authed := c.authed
	c.mu.Unlock()
	switch strings.ToUpper(cmd) {
	case "PROTOCOLINFO":
		return c.protocolInfo()
	case "AUTHCHALLENGE":
		return c.authChallenge(rest)
	case "AUTHENTICATE":
		return c.authenticate(rest)
	case "QUIT":
		c.reply("250 closing connection")
		return false
	case "SETEVENTS":
		if !authed {
			return c.reply("514 Authentication required")
		}
		subs := make(map[string]bool)
		for _, kw := range strings.Fields(rest) {
			subs[strings.ToUpper(kw)] = true
		}
		c.mu.Lock()
		c.subscribed = subs
		start := !c.streaming && len(subs) > 0
		if start {
			c.streaming = true
		}
		c.mu.Unlock()
		if !c.reply("250 OK") {
			return false
		}
		if start {
			go c.stream()
		}
		return true
	case "GETINFO":
		if !authed {
			return c.reply("514 Authentication required")
		}
		if strings.TrimSpace(rest) == "version" {
			return c.reply("250-version=0.3.3.7-privcount-mock", "250 OK")
		}
		return c.reply("552 Unrecognized key")
	default:
		if !authed {
			return c.reply("514 Authentication required")
		}
		return c.reply(fmt.Sprintf("510 Unrecognized command %q", cmd))
	}
}

func (c *mockConn) protocolInfo() bool {
	var methods []string
	if c.m.cfg.Password != "" {
		methods = append(methods, "HASHEDPASSWORD")
	}
	if c.m.cfg.Cookie != nil {
		methods = append(methods, "COOKIE", "SAFECOOKIE")
	}
	if methods == nil {
		methods = append(methods, "NULL")
	}
	auth := "250 AUTH METHODS=" + strings.Join(methods, ",")
	if c.m.cfg.Cookie != nil && c.m.cfg.CookiePath != "" {
		auth = string(appendKV([]byte(auth), "COOKIEFILE", c.m.cfg.CookiePath))
	}
	return c.reply(
		"250 PROTOCOLINFO 1",
		auth,
		`250 VERSION Tor="0.3.3.7-privcount-mock"`,
		"250 OK",
	)
}

func (c *mockConn) authChallenge(rest string) bool {
	fields := strings.Fields(rest)
	if len(fields) != 2 || !strings.EqualFold(fields[0], "SAFECOOKIE") || c.m.cfg.Cookie == nil {
		return c.reply("512 Invalid AUTHCHALLENGE request")
	}
	clientNonce, err := hex.DecodeString(fields[1])
	if err != nil {
		return c.reply("512 Invalid nonce")
	}
	serverNonce := make([]byte, 32)
	if _, err := rand.Read(serverNonce); err != nil {
		return c.reply("550 Internal error")
	}
	c.mu.Lock()
	c.safeClientN, c.safeServerN, c.challengeSent = clientNonce, serverNonce, true
	c.mu.Unlock()
	hash := SafeCookieServerHash(c.m.cfg.Cookie, clientNonce, serverNonce)
	return c.reply(fmt.Sprintf("250 AUTHCHALLENGE SERVERHASH=%X SERVERNONCE=%X", hash, serverNonce))
}

func (c *mockConn) authenticate(rest string) bool {
	rest = strings.TrimSpace(rest)
	ok := false
	c.mu.Lock()
	challenge, cn, sn := c.challengeSent, c.safeClientN, c.safeServerN
	c.mu.Unlock()
	switch {
	case challenge:
		// A SAFECOOKIE exchange is in flight; only the client hash is
		// acceptable now.
		if hash, err := hex.DecodeString(rest); err == nil && c.m.cfg.Cookie != nil {
			ok = hashesEqual(hash, SafeCookieClientHash(c.m.cfg.Cookie, cn, sn))
		}
	case strings.HasPrefix(rest, `"`):
		if pw, trailing, err := unquote(rest); err == nil && trailing == "" {
			ok = c.m.cfg.Password != "" && pw == c.m.cfg.Password
		}
	case rest == "":
		ok = c.m.cfg.Password == "" && c.m.cfg.Cookie == nil
	default:
		if cookie, err := hex.DecodeString(rest); err == nil && c.m.cfg.Cookie != nil {
			ok = hashesEqual(cookie, c.m.cfg.Cookie)
		}
	}
	if !ok {
		c.reply("515 Authentication failed")
		return false // real Tor closes the connection on auth failure
	}
	c.mu.Lock()
	c.authed = true
	c.challengeSent = false
	c.mu.Unlock()
	return c.reply("250 OK")
}

// wants reports whether the controller subscribed to the keyword.
func (c *mockConn) wants(keyword string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subscribed[keyword]
}

// eventKeyword maps an event to its SETEVENTS keyword.
func eventKeyword(ev event.Event) string {
	switch ev.(type) {
	case *event.StreamEnd:
		return EventStreamEnded
	case *event.CircuitEnd:
		return EventCircuitEnded
	case *event.ConnectionEnd:
		return EventConnectionEnded
	case *event.DescPublished:
		return EventHSDirStored
	case *event.DescFetched:
		return EventHSDirFetched
	case *event.RendezvousEnd:
		return EventRendEnded
	}
	return ""
}

// stream replays the trace from the shared cursor to this controller.
// It exits when the connection dies, the relay closes, or the trace
// completes (leaving the connection open for the controller to QUIT).
func (c *mockConn) stream() {
	m := c.m
	for {
		m.mu.Lock()
		for {
			if m.closed || c.isGone() {
				m.mu.Unlock()
				return
			}
			if m.pos < len(m.trace) {
				break
			}
			if m.ended {
				n := m.written
				m.mu.Unlock()
				line := fmt.Sprintf("650 %s Processed=%d\r\n", EventDone, n)
				c.wmu.Lock()
				_, werr := c.conn.Write([]byte(line))
				c.wmu.Unlock()
				if werr == nil {
					m.mu.Lock()
					m.doneSent++
					m.mu.Unlock()
					m.cond.Broadcast()
				}
				m.logf("mockrelay: trace complete, %d event lines delivered", n)
				return
			}
			m.cond.Wait()
		}
		ev := m.trace[m.pos]
		m.mu.Unlock()

		keyword := eventKeyword(ev)
		delivered := false
		if keyword != "" && c.wants(keyword) {
			payload, err := FormatEvent(ev, m.cfg.EpochUnixNano)
			if err == nil {
				c.wmu.Lock()
				_, werr := c.conn.Write([]byte("650 " + payload + "\r\n"))
				c.wmu.Unlock()
				if werr != nil {
					return // cursor not advanced; a reconnect resumes here
				}
				delivered = true
			}
		}

		m.mu.Lock()
		m.pos++
		drop := false
		if delivered {
			m.written++
			if m.cfg.DropAfter > 0 && !m.dropped && m.written >= m.cfg.DropAfter {
				m.dropped = true
				drop = true
			}
		}
		m.mu.Unlock()
		if drop {
			m.logf("mockrelay: dropping controller connection after %d event lines (churn drill)", m.cfg.DropAfter)
			c.conn.Close()
			return
		}
	}
}

func (c *mockConn) isGone() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gone
}
