package torctl

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/event"
	"repro/internal/simtime"
)

// ErrTraceDone marks the mock relay's PRIVCOUNT_DONE trace-end line.
var ErrTraceDone = errors.New("torctl: end of replayed trace")

// TimeMap converts the wall-clock timestamps carried on event lines
// into the virtual simtime timeline the rest of the pipeline consumes.
// The zero TimeMap anchors: the first timestamp it sees becomes
// simtime 0 and later timestamps map to their offset from it, which is
// what a live collector wants (its measurement period starts at the
// first observation). An explicit epoch pins the mapping instead,
// which is what trace replay wants (offsets reproduce exactly).
type TimeMap struct {
	epoch     int64 // wall instant of simtime 0, Unix nanoseconds
	haveEpoch bool
}

// NewEpochTimeMap pins simtime 0 to the given wall-clock instant.
func NewEpochTimeMap(epoch time.Time) *TimeMap {
	return &TimeMap{epoch: epoch.UnixNano(), haveEpoch: true}
}

// Map converts a wall-clock Unix-nanosecond timestamp to simtime,
// anchoring on first use if no epoch was set.
func (m *TimeMap) Map(wallUnixNano int64) simtime.Time {
	if !m.haveEpoch {
		m.epoch = wallUnixNano
		m.haveEpoch = true
	}
	return simtime.Time(wallUnixNano - m.epoch)
}

// formatWall renders a Unix-nanosecond wall timestamp as the
// "seconds.nanoseconds" decimal the event lines carry. Integer
// arithmetic keeps the round trip exact; float64 cannot represent
// nanoseconds at 2018-scale epochs.
func formatWall(unixNano int64) string {
	return fmt.Sprintf("%d.%09d", unixNano/1e9, unixNano%1e9)
}

// parseWall parses "seconds[.fraction]" into Unix nanoseconds. The
// fraction may carry 1–9 digits; shorter fractions are right-padded.
func parseWall(s string) (int64, error) {
	intPart, frac, _ := strings.Cut(s, ".")
	sec, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil || sec < 0 {
		return 0, fmt.Errorf("torctl: bad timestamp %q", s)
	}
	var nanos int64
	if frac != "" {
		if len(frac) > 9 {
			return 0, fmt.Errorf("torctl: timestamp %q has sub-nanosecond precision", s)
		}
		n, err := strconv.ParseUint(frac, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("torctl: bad timestamp fraction %q", s)
		}
		nanos = int64(n)
		for i := len(frac); i < 9; i++ {
			nanos *= 10
		}
	}
	if sec > (1<<63-1-nanos)/1e9 {
		return 0, fmt.Errorf("torctl: timestamp %q overflows", s)
	}
	return sec*1e9 + nanos, nil
}

// Enum spellings on the wire. TargetKind, FetchOutcome, and RendOutcome
// reuse their String() forms; CircuitKind has no stringer, so its
// spellings live here.
const (
	kindDataStr      = "data"
	kindDirectoryStr = "directory"
)

// LineParser maps PRIVCOUNT_* event lines onto internal/event values.
// It normalizes fields (enum spellings, quoted strings, wall-clock
// times) and tolerates unknown keys, so an instrumented relay that
// grows new fields keeps feeding an older collector.
type LineParser struct {
	// Time maps wall-clock stamps to simtime; the zero value anchors at
	// the first event.
	Time TimeMap
	// DefaultRelay is the observer recorded when a line carries no
	// Relay= field — a real control port serves exactly one relay, so
	// the collector knows who it is talking to.
	DefaultRelay event.RelayID
}

// fields wraps the key=value map with typed, error-latching accessors:
// missing keys yield zero values (field normalization), malformed
// values latch the first error.
type fields struct {
	kv  map[string]string
	err error
}

func (f *fields) fail(key, val string, why error) {
	if f.err == nil {
		f.err = fmt.Errorf("torctl: field %s=%q: %v", key, val, why)
	}
}

func (f *fields) str(key string) string { return f.kv[key] }

func (f *fields) uint(key string, bits int) uint64 {
	v, ok := f.kv[key]
	if !ok {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, bits)
	if err != nil {
		f.fail(key, v, errors.New("not an unsigned integer"))
	}
	return n
}

func (f *fields) flag(key string) bool {
	v, ok := f.kv[key]
	if !ok {
		return false
	}
	switch v {
	case "1":
		return true
	case "0":
		return false
	}
	f.fail(key, v, errors.New("not a 0/1 flag"))
	return false
}

func (f *fields) addr(key string) netip.Addr {
	v, ok := f.kv[key]
	if !ok || v == "" {
		return netip.Addr{}
	}
	a, err := netip.ParseAddr(v)
	if err != nil {
		f.fail(key, v, errors.New("not an IP address"))
		return netip.Addr{}
	}
	return a
}

func (f *fields) enum(key string, vals map[string]uint8) uint8 {
	v, ok := f.kv[key]
	if !ok {
		return 0
	}
	n, ok := vals[v]
	if !ok {
		f.fail(key, v, errors.New("unknown enum value"))
	}
	return n
}

var (
	targetVals = map[string]uint8{
		event.TargetHostname.String(): uint8(event.TargetHostname),
		event.TargetIPv4.String():     uint8(event.TargetIPv4),
		event.TargetIPv6.String():     uint8(event.TargetIPv6),
	}
	circKindVals = map[string]uint8{
		kindDataStr:      uint8(event.CircuitData),
		kindDirectoryStr: uint8(event.CircuitDirectory),
	}
	fetchVals = map[string]uint8{
		event.FetchOK.String():        uint8(event.FetchOK),
		event.FetchNotFound.String():  uint8(event.FetchNotFound),
		event.FetchMalformed.String(): uint8(event.FetchMalformed),
	}
	rendVals = map[string]uint8{
		event.RendSucceeded.String():  uint8(event.RendSucceeded),
		event.RendConnClosed.String(): uint8(event.RendConnClosed),
		event.RendExpired.String():    uint8(event.RendExpired),
	}
)

// Parse maps one asynchronous event line onto an internal/event value.
// The line may or may not still carry its "650 " prefix. Non-PRIVCOUNT
// events return ErrNotPrivCount; the mock relay's trace-end marker
// returns ErrTraceDone; unknown PRIVCOUNT_* keywords and malformed
// known fields return descriptive errors. Unknown keys are ignored.
func (p *LineParser) Parse(line string) (event.Event, error) {
	if len(line) >= 4 && line[:3] == "650" && (line[3] == ' ' || line[3] == '-' || line[3] == '+') {
		line = line[4:]
	}
	keyword, rest, _ := strings.Cut(line, " ")
	if !strings.HasPrefix(keyword, "PRIVCOUNT_") {
		return nil, ErrNotPrivCount
	}
	if keyword == EventDone {
		return nil, ErrTraceDone
	}
	kv, _, err := splitFields(rest)
	if err != nil {
		return nil, err
	}
	f := &fields{kv: kv}

	// Header: wall-clock time and observing relay, with defaults.
	var hdr event.Header
	hdr.Relay = p.DefaultRelay
	if v, ok := kv["Relay"]; ok {
		n, err := strconv.ParseUint(v, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("torctl: field Relay=%q: not a relay id", v)
		}
		hdr.Relay = event.RelayID(n)
	}
	if v, ok := kv["Time"]; ok {
		wall, err := parseWall(v)
		if err != nil {
			return nil, err
		}
		hdr.At = p.Time.Map(wall)
	}

	var ev event.Event
	switch keyword {
	case EventStreamEnded:
		ev = &event.StreamEnd{
			Header:    hdr,
			CircuitID: f.uint("CircID", 64),
			IsInitial: f.flag("IsInitial"),
			Target:    event.TargetKind(f.enum("Target", targetVals)),
			Port:      uint16(f.uint("Port", 16)),
			Hostname:  f.str("Host"),
			BytesSent: f.uint("SentBytes", 64),
			BytesRecv: f.uint("RecvBytes", 64),
		}
	case EventCircuitEnded:
		ev = &event.CircuitEnd{
			Header:     hdr,
			CircuitID:  f.uint("CircID", 64),
			Kind:       event.CircuitKind(f.enum("Kind", circKindVals)),
			ClientIP:   f.addr("ClientIP"),
			Country:    f.str("Country"),
			ASN:        uint32(f.uint("ASN", 32)),
			NumStreams: uint32(f.uint("NumStreams", 32)),
			BytesSent:  f.uint("SentBytes", 64),
			BytesRecv:  f.uint("RecvBytes", 64),
		}
	case EventConnectionEnded:
		ev = &event.ConnectionEnd{
			Header:      hdr,
			ClientIP:    f.addr("ClientIP"),
			Country:     f.str("Country"),
			ASN:         uint32(f.uint("ASN", 32)),
			NumCircuits: uint32(f.uint("NumCircuits", 32)),
			BytesSent:   f.uint("SentBytes", 64),
			BytesRecv:   f.uint("RecvBytes", 64),
		}
	case EventHSDirStored:
		ev = &event.DescPublished{
			Header:  hdr,
			Address: f.str("Address"),
			Version: uint8(f.uint("Version", 8)),
			Replica: uint8(f.uint("Replica", 8)),
		}
	case EventHSDirFetched:
		ev = &event.DescFetched{
			Header:  hdr,
			Address: f.str("Address"),
			Version: uint8(f.uint("Version", 8)),
			Outcome: event.FetchOutcome(f.enum("Outcome", fetchVals)),
		}
	case EventRendEnded:
		ev = &event.RendezvousEnd{
			Header:       hdr,
			CircuitID:    f.uint("CircID", 64),
			Version:      uint8(f.uint("Version", 8)),
			Outcome:      event.RendOutcome(f.enum("Outcome", rendVals)),
			PayloadCells: f.uint("PayloadCells", 64),
			PayloadBytes: f.uint("PayloadBytes", 64),
		}
	default:
		return nil, fmt.Errorf("torctl: unknown event keyword %q", keyword)
	}
	if f.err != nil {
		return nil, f.err
	}
	return ev, nil
}
