package torctl

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// Source turns a control-port client into a stream of internal/event
// values, the same shape the torsim socket feed produces, so the data
// collector's round fan-out runs unchanged over a live relay.
type Source struct {
	c      *Client
	parser LineParser
	logf   func(format string, args ...any)
	out    chan event.Event

	parsed  atomic.Int64
	skipped atomic.Int64

	mu  sync.Mutex
	err error
}

// DialSource establishes the control connection (see Dial) and starts
// translating its PRIVCOUNT_* lines into events.
func DialSource(cfg Config, parser LineParser) (*Source, error) {
	c, err := Dial(cfg)
	if err != nil {
		return nil, err
	}
	s := &Source{c: c, parser: parser, logf: cfg.logf, out: make(chan event.Event, 256)}
	go s.loop()
	return s, nil
}

// Events delivers parsed events. The channel closes when the trace
// ends (mock relay), the source is closed, or the client dies; Err
// distinguishes the last case.
func (s *Source) Events() <-chan event.Event { return s.out }

// Err reports why Events closed; nil for a clean end.
func (s *Source) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats reports how many lines parsed into events and how many
// malformed or unknown lines were skipped.
func (s *Source) Stats() (parsed, skipped int64) {
	return s.parsed.Load(), s.skipped.Load()
}

// Reconnects reports the underlying client's reconnection count.
func (s *Source) Reconnects() int { return s.c.Reconnects() }

// Close tears the source down; Events closes shortly after.
func (s *Source) Close() { s.c.Close() }

func (s *Source) loop() {
	defer close(s.out)
	for line := range s.c.Lines() {
		ev, err := s.parser.Parse(line)
		switch {
		case err == nil:
			s.parsed.Add(1)
			// Select against client shutdown: a consumer that stopped
			// reading Events after Close must not strand this goroutine
			// on the send (Events still closes, via the deferred close).
			select {
			case s.out <- ev:
			case <-s.c.stop:
				return
			}
		case errors.Is(err, ErrTraceDone):
			// The relay marked the end of its replayed trace: a clean
			// end of collection.
			s.c.Close()
			return
		case errors.Is(err, ErrNotPrivCount):
			// Subscribed to broader events than we parse; ignore.
		default:
			// Malformed line: tolerate (a live feed must survive a
			// relay hiccup) but count and report it.
			if n := s.skipped.Add(1); n <= 5 {
				s.logf("torctl: skipping unparseable event line: %v", err)
			}
		}
	}
	s.mu.Lock()
	s.err = s.c.Err()
	s.mu.Unlock()
}
