package torctl

import (
	"crypto/hmac"
	"crypto/sha256"
)

// SAFECOOKIE authentication (control-spec §3.24): both sides prove
// knowledge of the cookie file without ever sending it, so a
// man-in-the-middle on the control socket cannot steal the cookie and
// the controller also authenticates the relay. The two HMAC-SHA256
// personalization strings are fixed by the spec.
const (
	safeCookieServerKey = "Tor safe cookie authentication server-to-controller hash"
	safeCookieClientKey = "Tor safe cookie authentication controller-to-server hash"
)

// CookieLen is the length of a control-auth cookie file.
const CookieLen = 32

func safeCookieHash(key string, cookie, clientNonce, serverNonce []byte) []byte {
	m := hmac.New(sha256.New, []byte(key))
	m.Write(cookie)
	m.Write(clientNonce)
	m.Write(serverNonce)
	return m.Sum(nil)
}

// SafeCookieServerHash computes the hash the relay sends in its
// AUTHCHALLENGE reply, proving it knows the cookie.
func SafeCookieServerHash(cookie, clientNonce, serverNonce []byte) []byte {
	return safeCookieHash(safeCookieServerKey, cookie, clientNonce, serverNonce)
}

// SafeCookieClientHash computes the hash the controller sends in its
// final AUTHENTICATE, proving it knows the cookie.
func SafeCookieClientHash(cookie, clientNonce, serverNonce []byte) []byte {
	return safeCookieHash(safeCookieClientKey, cookie, clientNonce, serverNonce)
}

// hashesEqual is constant-time comparison for auth material.
func hashesEqual(a, b []byte) bool { return hmac.Equal(a, b) }
