package torctl

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/simtime"
)

// feedTrace pushes n synthetic connection-end events into the mock.
func feedTrace(m *MockRelay, n int) []event.Event {
	evs := make([]event.Event, 0, n)
	for i := 0; i < n; i++ {
		ev := &event.ConnectionEnd{
			Header:   event.Header{At: simtime.Time(i) * simtime.Second, Relay: 7},
			ClientIP: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			Country:  "de", ASN: 3320, NumCircuits: 1, BytesSent: 100, BytesRecv: 200,
		}
		m.Feed(ev)
		evs = append(evs, ev)
	}
	return evs
}

// startMock builds, binds, and tears down a mock relay.
func startMock(t *testing.T, cfg MockConfig) (*MockRelay, string) {
	t.Helper()
	m, err := NewMockRelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := m.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, addr.String()
}

// drain collects events until the source closes, with a deadline.
func drain(t *testing.T, src *Source) []event.Event {
	t.Helper()
	var out []event.Event
	deadline := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-src.Events():
			if !ok {
				if err := src.Err(); err != nil {
					t.Fatalf("source error: %v", err)
				}
				return out
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out with %d events", len(out))
		}
	}
}

// expectSame compares two event slices through the binary codec.
func expectSame(t *testing.T, want, got []event.Event) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w := event.Marshal(nil, want[i])
		g := event.Marshal(nil, got[i])
		if !bytes.Equal(w, g) {
			t.Fatalf("event %d differs:\n want %x\n got  %x", i, w, g)
		}
	}
}

// TestSourceSafeCookie runs the full path over TCP loopback: SAFECOOKIE
// auth (cookie path advertised via PROTOCOLINFO, not configured),
// SETEVENTS, replay, trace-end. Events must arrive intact and in order.
func TestSourceSafeCookie(t *testing.T) {
	cookie, err := GenerateCookie()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cookiePath := filepath.Join(dir, "control_auth_cookie")
	if err := os.WriteFile(cookiePath, cookie, 0o600); err != nil {
		t.Fatal(err)
	}
	m, addr := startMock(t, MockConfig{Cookie: cookie, CookiePath: cookiePath})
	want := feedTrace(m, 50)
	m.End()

	src, err := DialSource(Config{Addr: addr, Logf: t.Logf}, LineParser{Time: *NewEpochTimeMap(time.Unix(defaultEpochUnixNano/1e9, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	expectSame(t, want, got)
	if parsed, skipped := src.Stats(); parsed != 50 || skipped != 0 {
		t.Errorf("stats parsed=%d skipped=%d, want 50, 0", parsed, skipped)
	}
}

// TestSourcePasswordAndLiveFeed authenticates by password and feeds
// events while the controller is attached (live mode, not pre-loaded).
func TestSourcePasswordAndLiveFeed(t *testing.T) {
	m, addr := startMock(t, MockConfig{Password: `s3kr1t "quoted"`})
	src, err := DialSource(Config{Addr: addr, Password: `s3kr1t "quoted"`, Logf: t.Logf},
		LineParser{Time: *NewEpochTimeMap(time.Unix(defaultEpochUnixNano/1e9, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	want := feedTrace(m, 20)
	m.End()
	got := drain(t, src)
	expectSame(t, want, got)
}

// TestAuthFailures: bad credentials must fail Dial immediately with
// ErrAuthFailed — not retry forever.
func TestAuthFailures(t *testing.T) {
	cookie, _ := GenerateCookie()
	_, addr := startMock(t, MockConfig{Cookie: cookie})

	badCookie, _ := GenerateCookie()
	dir := t.TempDir()
	badPath := filepath.Join(dir, "cookie")
	if err := os.WriteFile(badPath, badCookie, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(Config{Addr: addr, CookiePath: badPath}); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("bad cookie: err = %v, want ErrAuthFailed", err)
	}

	_, addrPW := startMock(t, MockConfig{Password: "right"})
	if _, err := Dial(Config{Addr: addrPW, Password: "wrong"}); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("bad password: err = %v, want ErrAuthFailed", err)
	}
}

// TestReconnectSurvivesDrop is the churn drill: the mock drops the
// connection mid-feed, the client reconnects, and the replay cursor
// guarantees no events are lost.
func TestReconnectSurvivesDrop(t *testing.T) {
	m, addr := startMock(t, MockConfig{DropAfter: 30})
	want := feedTrace(m, 100)
	m.End()

	src, err := DialSource(Config{
		Addr: addr, ReconnectMin: 20 * time.Millisecond, Logf: t.Logf,
	}, LineParser{Time: *NewEpochTimeMap(time.Unix(defaultEpochUnixNano/1e9, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	expectSame(t, want, got)
	if src.Reconnects() < 1 {
		t.Errorf("reconnects = %d, want >= 1", src.Reconnects())
	}
}

// TestClientGivesUp: with the relay gone and a failure budget, the
// client ends with a terminal error instead of retrying forever.
func TestClientGivesUp(t *testing.T) {
	m, addr := startMock(t, MockConfig{})
	feedTrace(m, 5)
	src, err := DialSource(Config{
		Addr: addr, ReconnectMin: 5 * time.Millisecond, MaxDialFailures: 3, Logf: t.Logf,
	}, LineParser{})
	if err != nil {
		t.Fatal(err)
	}
	m.Close() // relay vanishes for good, trace never Ends
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-src.Events():
			if !ok {
				if src.Err() == nil {
					t.Fatal("source ended cleanly, want a terminal error")
				}
				return
			}
		case <-deadline:
			t.Fatal("source did not terminate")
		}
	}
}

// TestMockRejectsUnauthenticated: commands before AUTHENTICATE get 514
// and do not crash the relay; QUIT is honored.
func TestMockRejectsUnauthenticated(t *testing.T) {
	cookie, _ := GenerateCookie()
	_, addr := startMock(t, MockConfig{Cookie: cookie})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	roundTrip := func(cmd string) Reply {
		t.Helper()
		rep, err := request(conn, br, cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		return rep
	}
	if rep := roundTrip("SETEVENTS " + EventStreamEnded); rep.Status != 514 {
		t.Fatalf("pre-auth SETEVENTS status = %d, want 514", rep.Status)
	}
	if rep := roundTrip("PROTOCOLINFO 1"); !rep.IsOK() {
		t.Fatalf("PROTOCOLINFO status = %d", rep.Status)
	}
	if rep := roundTrip("AUTHENTICATE"); rep.Status != 515 {
		t.Fatalf("null auth against cookie relay = %d, want 515", rep.Status)
	}
}

func ExampleFormatEvent() {
	ev := &event.DescFetched{
		Header:  event.Header{At: simtime.Minute, Relay: 5},
		Address: "abcdefghijklmnop", Version: 2, Outcome: event.FetchNotFound,
	}
	line, _ := FormatEvent(ev, defaultEpochUnixNano)
	fmt.Println(line)
	// Output: PRIVCOUNT_HSDIR_FETCHED Time=1514764860.000000000 Relay=5 Address=abcdefghijklmnop Version=2 Outcome=not-found
}

// TestSourceCloseWhileNotReading: Close must make Events close even
// when the consumer has stopped receiving and the source's buffer is
// full — the documented teardown order.
func TestSourceCloseWhileNotReading(t *testing.T) {
	m, addr := startMock(t, MockConfig{})
	feedTrace(m, 2000) // far more than the source's channel buffer
	m.End()
	src, err := DialSource(Config{Addr: addr, Logf: t.Logf}, LineParser{})
	if err != nil {
		t.Fatal(err)
	}
	<-src.Events() // consume one event, then stop reading entirely
	src.Close()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-src.Events():
			if !ok {
				return // closed, as documented
			}
		case <-deadline:
			t.Fatal("Events did not close after Close")
		}
	}
}
