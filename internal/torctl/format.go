package torctl

import (
	"fmt"
	"strconv"

	"repro/internal/event"
)

// FormatEvent renders an internal/event value as the payload of a 650
// async line (keyword plus key=value fields, no "650 " prefix, no
// CRLF). epochUnixNano is the wall-clock instant of simtime 0, so
// replayed traces carry realistic absolute timestamps the way an
// instrumented Tor would. FormatEvent and LineParser.Parse (with the
// matching epoch) are exact inverses; the golden tests pin this.
func FormatEvent(ev event.Event, epochUnixNano int64) (string, error) {
	b := make([]byte, 0, 192)
	wall := epochUnixNano + int64(ev.Time())
	if wall < 0 {
		return "", fmt.Errorf("torctl: event time %v predates the Unix epoch", ev.Time())
	}
	header := func(keyword string) {
		b = append(b, keyword...)
		b = appendKV(b, "Time", formatWall(wall))
		b = appendKV(b, "Relay", strconv.FormatUint(uint64(ev.Observer()), 10))
	}
	u := func(key string, v uint64) { b = appendKV(b, key, strconv.FormatUint(v, 10)) }

	switch e := ev.(type) {
	case *event.StreamEnd:
		header(EventStreamEnded)
		u("CircID", e.CircuitID)
		flag := "0"
		if e.IsInitial {
			flag = "1"
		}
		b = appendKV(b, "IsInitial", flag)
		b = appendKV(b, "Target", e.Target.String())
		u("Port", uint64(e.Port))
		b = appendKV(b, "Host", e.Hostname)
		u("SentBytes", e.BytesSent)
		u("RecvBytes", e.BytesRecv)
	case *event.CircuitEnd:
		header(EventCircuitEnded)
		u("CircID", e.CircuitID)
		kind := kindDataStr
		if e.Kind == event.CircuitDirectory {
			kind = kindDirectoryStr
		}
		b = appendKV(b, "Kind", kind)
		if e.ClientIP.IsValid() {
			b = appendKV(b, "ClientIP", e.ClientIP.String())
		}
		b = appendKV(b, "Country", e.Country)
		u("ASN", uint64(e.ASN))
		u("NumStreams", uint64(e.NumStreams))
		u("SentBytes", e.BytesSent)
		u("RecvBytes", e.BytesRecv)
	case *event.ConnectionEnd:
		header(EventConnectionEnded)
		if e.ClientIP.IsValid() {
			b = appendKV(b, "ClientIP", e.ClientIP.String())
		}
		b = appendKV(b, "Country", e.Country)
		u("ASN", uint64(e.ASN))
		u("NumCircuits", uint64(e.NumCircuits))
		u("SentBytes", e.BytesSent)
		u("RecvBytes", e.BytesRecv)
	case *event.DescPublished:
		header(EventHSDirStored)
		b = appendKV(b, "Address", e.Address)
		u("Version", uint64(e.Version))
		u("Replica", uint64(e.Replica))
	case *event.DescFetched:
		header(EventHSDirFetched)
		b = appendKV(b, "Address", e.Address)
		u("Version", uint64(e.Version))
		b = appendKV(b, "Outcome", e.Outcome.String())
	case *event.RendezvousEnd:
		header(EventRendEnded)
		u("CircID", e.CircuitID)
		u("Version", uint64(e.Version))
		b = appendKV(b, "Outcome", e.Outcome.String())
		u("PayloadCells", e.PayloadCells)
		u("PayloadBytes", e.PayloadBytes)
	default:
		return "", fmt.Errorf("torctl: no line format for event type %v", ev.EventType())
	}
	return string(b), nil
}
