package torctl

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
)

// FuzzParseEventLine throws malformed lines, truncated fields, stray
// quotes, and binary garbage at the parser. Properties: never panic;
// and when a line parses, Format∘Parse must be idempotent — the
// canonical form round-trips to the same event.
func FuzzParseEventLine(f *testing.F) {
	for _, ev := range sampleEvents() {
		line, err := FormatEvent(ev, defaultEpochUnixNano)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
		f.Add("650 " + line)
	}
	f.Add(EventStreamEnded + ` Host="unterminated`)
	f.Add(EventStreamEnded + " Port=99999 Target=bogus")
	f.Add(EventCircuitEnded + ` ClientIP=not-an-ip Country="a b"`)
	f.Add(EventDone + " Processed=3")
	f.Add("650+DATA\r\nnot an event\r\n.\r\n")
	f.Add("CIRC 4 BUILT PURPOSE=GENERAL")
	f.Add(EventRendEnded + " Time=1.5 Time=2.5 CircID=1 CircID=2")
	f.Add(EventHSDirStored + " =nokey")
	f.Add(strings.Repeat("A=", 1000))

	f.Fuzz(func(t *testing.T, line string) {
		p := &LineParser{Time: *NewEpochTimeMap(time.Unix(defaultEpochUnixNano/1e9, 0)), DefaultRelay: 3}
		ev, err := p.Parse(line)
		if err != nil {
			return
		}
		if ev == nil {
			t.Fatalf("Parse(%q) returned nil event and nil error", line)
		}
		canon, err := FormatEvent(ev, defaultEpochUnixNano)
		if err != nil {
			// Events predating the configured epoch have no wall-clock
			// rendering; nothing more to check.
			return
		}
		again, err := p.Parse(canon)
		if err != nil {
			t.Fatalf("canonical line %q (from %q) does not re-parse: %v", canon, line, err)
		}
		w := event.Marshal(nil, ev)
		g := event.Marshal(nil, again)
		if !bytes.Equal(w, g) {
			t.Fatalf("canonical round trip diverged:\n line  %q\n canon %q\n want  %x\n got   %x", line, canon, w, g)
		}
	})
}

// FuzzReadReply feeds arbitrary bytes — including truncated replies
// and CRLF split across chunks — to the reply reader. It must never
// panic and must never return a malformed success.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("250 OK\r\n"))
	f.Add([]byte("250-PROTOCOLINFO 1\r\n250-AUTH METHODS=NULL\r\n250 OK\r\n"))
	f.Add([]byte("250+data\r\nline one\r\n..dot stuffed\r\n.\r\n250 OK\r\n"))
	f.Add([]byte("650 PRIVCOUNT_STREAM_ENDED Port=80\r\n"))
	f.Add([]byte("650 TRUNCATED"))          // no terminator
	f.Add([]byte("65"))                     // short status
	f.Add([]byte("xyz bad status\r\n"))     // non-numeric
	f.Add([]byte("250?weird sep\r\n"))      // bad separator
	f.Add([]byte("250-one\r\n550 two\r\n")) // status change mid-reply
	f.Add([]byte("250+never terminated\r\ndata\r\n"))
	f.Add(bytes.Repeat([]byte("250-x\r\n"), 50))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ReadReply(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if rep.Status < 100 || rep.Status > 999 {
			t.Fatalf("accepted out-of-range status %d from %q", rep.Status, data)
		}
		if len(rep.Lines) == 0 {
			t.Fatalf("accepted reply with no lines from %q", data)
		}
	})
}

// TestParserSurvivesCRLFSplits simulates a feed delivered byte-by-byte
// (worst-case TCP segmentation): the line reader must reassemble
// identical replies regardless of chunking.
func TestParserSurvivesCRLFSplits(t *testing.T) {
	payload := "250-PROTOCOLINFO 1\r\n250-AUTH METHODS=COOKIE,SAFECOOKIE\r\n250 OK\r\n"
	whole, err := ReadReply(bufio.NewReader(strings.NewReader(payload)))
	if err != nil {
		t.Fatal(err)
	}
	// one-byte reads via an iotest-style reader
	chunked, err := ReadReply(bufio.NewReaderSize(oneByteReader{strings.NewReader(payload)}, 16))
	if err != nil {
		t.Fatal(err)
	}
	if whole.Status != chunked.Status || len(whole.Lines) != len(chunked.Lines) {
		t.Fatalf("chunked parse diverged: %+v vs %+v", whole, chunked)
	}
	for i := range whole.Lines {
		if whole.Lines[i] != chunked.Lines[i] {
			t.Fatalf("line %d: %q vs %q", i, whole.Lines[i], chunked.Lines[i])
		}
	}
}

type oneByteReader struct{ r *strings.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// TestReadLineCapsUnterminatedLines: a peer streaming an endless line
// must be cut off near the cap, not buffered without bound.
func TestReadLineCapsUnterminatedLines(t *testing.T) {
	huge := strings.Repeat("a", maxLineLen+1<<15)
	_, err := readLine(bufio.NewReaderSize(strings.NewReader(huge), 4096))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("unterminated %d-byte line: err = %v, want length-cap error", len(huge), err)
	}
	// A line exactly at the cap still parses.
	ok := strings.Repeat("b", maxLineLen-2) + "\r\n"
	line, err := readLine(bufio.NewReaderSize(strings.NewReader(ok), 4096))
	if err != nil || len(line) != maxLineLen-2 {
		t.Fatalf("cap-sized line: len=%d err=%v", len(line), err)
	}
}
