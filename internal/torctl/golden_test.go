package torctl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
)

const goldenPath = "testdata/privcount_lines.golden"

// TestGoldenLines pins the wire dialect: formatting the sample events
// must reproduce testdata/privcount_lines.golden byte for byte, and
// parsing the golden lines must reproduce the events exactly under the
// binary codec of internal/event. Any change to the line format shows
// up here as a diff, not as a silent incompatibility with deployed
// relays. Regenerate deliberately with UPDATE_GOLDEN=1.
func TestGoldenLines(t *testing.T) {
	var b strings.Builder
	for _, ev := range sampleEvents() {
		line, err := FormatEvent(ev, defaultEpochUnixNano)
		if err != nil {
			t.Fatalf("format %T: %v", ev, err)
		}
		b.WriteString("650 ")
		b.WriteString(line)
		b.WriteString("\r\n")
	}
	got := b.String()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("formatted lines diverge from %s:\n got:\n%s\nwant:\n%s", goldenPath, got, want)
	}

	// Round trip: every golden line parses back to the exact event.
	p := &LineParser{Time: *NewEpochTimeMap(time.Unix(defaultEpochUnixNano/1e9, 0))}
	lines := strings.Split(strings.TrimRight(string(want), "\r\n"), "\r\n")
	evs := sampleEvents()
	if len(lines) != len(evs) {
		t.Fatalf("golden holds %d lines, want %d", len(lines), len(evs))
	}
	for i, line := range lines {
		parsed, err := p.Parse(line)
		if err != nil {
			t.Fatalf("golden line %d %q: %v", i, line, err)
		}
		w := event.Marshal(nil, evs[i])
		g := event.Marshal(nil, parsed)
		if !bytes.Equal(w, g) {
			t.Errorf("golden line %d round trip:\n line %q\n want %x\n got  %x", i, line, w, g)
		}
	}
}
