// Package torctl speaks the Tor control protocol to an instrumented
// relay, replacing the torsim socket feed with the ingestion path the
// paper's deployment used (§3.1): a PrivCount-patched Tor emits
// asynchronous PRIVCOUNT_* control-port events, and the data collector
// consumes them over a long-lived, authenticated control connection.
//
// The package has three layers:
//
//   - A control-protocol client (Client): PROTOCOLINFO, COOKIE /
//     SAFECOOKIE / password AUTHENTICATE, SETEVENTS, 650 async-reply
//     parsing, and automatic reconnect with exponential backoff, so a
//     months-long collection survives relay restarts and network churn.
//   - Line parsers (LineParser, FormatEvent) mapping PRIVCOUNT_* event
//     lines onto the internal/event vocabulary: wall-clock timestamps
//     map onto simtime via a TimeMap, enum fields are normalized, and
//     unknown keys are tolerated so a newer Tor patch does not break an
//     older collector.
//   - A mock instrumented relay (MockRelay): a control-port server that
//     authenticates controllers and replays torsim-generated traces as
//     PRIVCOUNT_* lines. It doubles as the test double for the client
//     and, via cmd/mockrelay, as a standalone stand-in relay for
//     deployment rehearsals.
//
// The event-line dialect is keyword=value, mirroring Tor's own async
// events (e.g. "650 CIRC ... BUILD_FLAGS=..."):
//
//	650 PRIVCOUNT_STREAM_ENDED Time=1514764800.250000000 Relay=3
//	    CircID=77 IsInitial=1 Target=hostname Port=443
//	    Host=example.com SentBytes=120 RecvBytes=4096
//
// Values containing spaces, quotes, or backslashes travel as quoted
// strings with backslash escapes (the control-spec QuotedString form).
//
// # Invariants
//
//   - The wire dialect is pinned by testdata/privcount_lines.golden:
//     FormatEvent and LineParser must round-trip every golden line
//     byte-for-byte, so a dialect change is a deliberate golden-file
//     update, never an accident. Fuzz tests hold the parser to
//     crash-freedom on arbitrary lines and replies.
//   - MockRelay replays from a global trace cursor: a reconnecting
//     collector resumes where the feed left off rather than replaying
//     from the start, matching a real relay's live event stream.
//   - Client reconnection re-authenticates and re-issues SETEVENTS;
//     ErrAuthFailed is terminal (bad credentials cannot be retried
//     into working).
package torctl
