// Package torctl speaks the Tor control protocol to an instrumented
// relay, replacing the torsim socket feed with the ingestion path the
// paper's deployment used (§3.1): a PrivCount-patched Tor emits
// asynchronous PRIVCOUNT_* control-port events, and the data collector
// consumes them over a long-lived, authenticated control connection.
//
// The package has three layers:
//
//   - A control-protocol client (Client): PROTOCOLINFO, COOKIE /
//     SAFECOOKIE / password AUTHENTICATE, SETEVENTS, 650 async-reply
//     parsing, and automatic reconnect with exponential backoff, so a
//     months-long collection survives relay restarts and network churn.
//   - Line parsers (LineParser, FormatEvent) mapping PRIVCOUNT_* event
//     lines onto the internal/event vocabulary: wall-clock timestamps
//     map onto simtime via a TimeMap, enum fields are normalized, and
//     unknown keys are tolerated so a newer Tor patch does not break an
//     older collector.
//   - A mock instrumented relay (MockRelay): a control-port server that
//     authenticates controllers and replays torsim-generated traces as
//     PRIVCOUNT_* lines. It doubles as the test double for the client
//     and, via cmd/mockrelay, as a standalone stand-in relay for
//     deployment rehearsals.
//
// The event-line dialect is keyword=value, mirroring Tor's own async
// events (e.g. "650 CIRC ... BUILD_FLAGS=..."):
//
//	650 PRIVCOUNT_STREAM_ENDED Time=1514764800.250000000 Relay=3
//	    CircID=77 IsInitial=1 Target=hostname Port=443
//	    Host=example.com SentBytes=120 RecvBytes=4096
//
// Values containing spaces, quotes, or backslashes travel as quoted
// strings with backslash escapes (the control-spec QuotedString form).
package torctl

import "errors"

// PRIVCOUNT_* event keywords, the SETEVENTS vocabulary of the
// instrumented relay. The first six map 1:1 onto internal/event types;
// EventDone is a mock-relay extension marking the end of a replayed
// trace (a real Tor never sends it — live collections end on round
// deadlines instead).
const (
	EventStreamEnded     = "PRIVCOUNT_STREAM_ENDED"
	EventCircuitEnded    = "PRIVCOUNT_CIRCUIT_ENDED"
	EventConnectionEnded = "PRIVCOUNT_CONNECTION_ENDED"
	EventHSDirStored     = "PRIVCOUNT_HSDIR_STORED"
	EventHSDirFetched    = "PRIVCOUNT_HSDIR_FETCHED"
	EventRendEnded       = "PRIVCOUNT_REND_ENDED"
	EventDone            = "PRIVCOUNT_DONE"
)

// AllEvents is the default SETEVENTS subscription: every PRIVCOUNT_*
// event the relay can emit, plus the trace-end marker.
var AllEvents = []string{
	EventStreamEnded, EventCircuitEnded, EventConnectionEnded,
	EventHSDirStored, EventHSDirFetched, EventRendEnded, EventDone,
}

// Package errors.
var (
	// ErrNotPrivCount marks a 650 line whose keyword is not a
	// PRIVCOUNT_* event; callers subscribed to broader event sets skip
	// these.
	ErrNotPrivCount = errors.New("torctl: not a PRIVCOUNT event line")
	// ErrAuthFailed is returned when the relay rejects our credentials;
	// it is terminal — reconnecting cannot fix bad credentials.
	ErrAuthFailed = errors.New("torctl: authentication failed")
	// ErrClosed is returned from operations on a closed client.
	ErrClosed = errors.New("torctl: client closed")
)
