package torctl

import "errors"

// PRIVCOUNT_* event keywords, the SETEVENTS vocabulary of the
// instrumented relay. The first six map 1:1 onto internal/event types;
// EventDone is a mock-relay extension marking the end of a replayed
// trace (a real Tor never sends it — live collections end on round
// deadlines instead).
const (
	EventStreamEnded     = "PRIVCOUNT_STREAM_ENDED"
	EventCircuitEnded    = "PRIVCOUNT_CIRCUIT_ENDED"
	EventConnectionEnded = "PRIVCOUNT_CONNECTION_ENDED"
	EventHSDirStored     = "PRIVCOUNT_HSDIR_STORED"
	EventHSDirFetched    = "PRIVCOUNT_HSDIR_FETCHED"
	EventRendEnded       = "PRIVCOUNT_REND_ENDED"
	EventDone            = "PRIVCOUNT_DONE"
)

// AllEvents is the default SETEVENTS subscription: every PRIVCOUNT_*
// event the relay can emit, plus the trace-end marker.
var AllEvents = []string{
	EventStreamEnded, EventCircuitEnded, EventConnectionEnded,
	EventHSDirStored, EventHSDirFetched, EventRendEnded, EventDone,
}

// Package errors.
var (
	// ErrNotPrivCount marks a 650 line whose keyword is not a
	// PRIVCOUNT_* event; callers subscribed to broader event sets skip
	// these.
	ErrNotPrivCount = errors.New("torctl: not a PRIVCOUNT event line")
	// ErrAuthFailed is returned when the relay rejects our credentials;
	// it is terminal — reconnecting cannot fix bad credentials.
	ErrAuthFailed = errors.New("torctl: authentication failed")
	// ErrClosed is returned from operations on a closed client.
	ErrClosed = errors.New("torctl: client closed")
)
