package torctl

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/simtime"
)

// sampleEvents covers every event type plus the awkward field shapes:
// quoted hostnames, empty strings, missing addresses, zero times.
func sampleEvents() []event.Event {
	hdr := func(at simtime.Time, relay event.RelayID) event.Header {
		return event.Header{At: at, Relay: relay}
	}
	return []event.Event{
		&event.StreamEnd{
			Header: hdr(simtime.Second/4, 3), CircuitID: 77, IsInitial: true,
			Target: event.TargetHostname, Port: 443, Hostname: "example.com",
			BytesSent: 120, BytesRecv: 4096,
		},
		&event.StreamEnd{
			Header: hdr(0, 0), CircuitID: 0, IsInitial: false,
			Target: event.TargetIPv6, Port: 65535, Hostname: `odd "host name"\with specials`,
			BytesSent: 0, BytesRecv: 1<<63 + 7,
		},
		&event.CircuitEnd{
			Header: hdr(13*simtime.Hour, 9), CircuitID: 9, Kind: event.CircuitDirectory,
			ClientIP: netip.MustParseAddr("10.1.2.3"), Country: "de", ASN: 3320,
			NumStreams: 4, BytesSent: 1000, BytesRecv: 2000,
		},
		&event.CircuitEnd{
			Header: hdr(simtime.Minute, 1), Kind: event.CircuitData,
			ClientIP: netip.Addr{}, Country: "",
		},
		&event.ConnectionEnd{
			Header: hdr(simtime.Day-1, 65535), ClientIP: netip.MustParseAddr("2001:db8::1"),
			Country: "us", ASN: 7018, NumCircuits: 3, BytesSent: 5, BytesRecv: 6,
		},
		&event.DescPublished{Header: hdr(simtime.Hour, 5), Address: "abcdefghijklmnop", Version: 2, Replica: 1},
		&event.DescFetched{Header: hdr(simtime.Hour+1, 5), Address: "qrstuvwxyz234567", Version: 2, Outcome: event.FetchNotFound},
		&event.RendezvousEnd{
			Header: hdr(2*simtime.Hour, 4), CircuitID: 1, Version: 3,
			Outcome: event.RendConnClosed, PayloadCells: 10, PayloadBytes: 4980,
		},
	}
}

// TestFormatParseRoundTrip pins FormatEvent and Parse as inverses,
// comparing through the binary codec so every field participates.
func TestFormatParseRoundTrip(t *testing.T) {
	p := &LineParser{Time: *NewEpochTimeMap(time.Unix(defaultEpochUnixNano/1e9, 0))}
	for _, ev := range sampleEvents() {
		line, err := FormatEvent(ev, defaultEpochUnixNano)
		if err != nil {
			t.Fatalf("format %T: %v", ev, err)
		}
		got, err := p.Parse(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		want := event.Marshal(nil, ev)
		have := event.Marshal(nil, got)
		if !bytes.Equal(want, have) {
			t.Errorf("round trip mismatch for %T:\n line %q\n want %x\n got  %x", ev, line, want, have)
		}
	}
}

// TestParsePrefixAndTolerance checks 650-prefix stripping, unknown-key
// tolerance, and relay defaulting.
func TestParsePrefixAndTolerance(t *testing.T) {
	p := &LineParser{DefaultRelay: 12}
	line := "650 " + EventStreamEnded + ` Time=100.5 CircID=4 NewField=whatever Crazy="quoted value" Port=80 Target=ipv4`
	ev, err := p.Parse(line)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, ok := ev.(*event.StreamEnd)
	if !ok {
		t.Fatalf("got %T", ev)
	}
	if s.Relay != 12 {
		t.Errorf("default relay = %d, want 12", s.Relay)
	}
	if s.Port != 80 || s.Target != event.TargetIPv4 || s.CircuitID != 4 {
		t.Errorf("fields: %+v", s)
	}
	// The anchoring TimeMap pins the first event to simtime 0.
	if s.At != 0 {
		t.Errorf("anchored time = %v, want 0", s.At)
	}
	// A second event maps to its offset from the anchor.
	ev2, err := p.Parse(EventStreamEnded + " Time=101.5")
	if err != nil {
		t.Fatalf("parse 2: %v", err)
	}
	if got := ev2.Time(); got != simtime.Second {
		t.Errorf("offset time = %v, want 1s", got)
	}
}

func TestParseErrors(t *testing.T) {
	p := &LineParser{}
	cases := []struct {
		line string
		want error
	}{
		{"CIRC 4 BUILT", ErrNotPrivCount},
		{"650 CIRC 4 BUILT", ErrNotPrivCount},
		{"650 " + EventDone + " Processed=7", ErrTraceDone},
	}
	for _, c := range cases {
		if _, err := p.Parse(c.line); !errors.Is(err, c.want) {
			t.Errorf("Parse(%q) err = %v, want %v", c.line, err, c.want)
		}
	}
	bad := []string{
		EventStreamEnded + " Port=notanumber",
		EventStreamEnded + " Port=65536",
		EventStreamEnded + " IsInitial=yes",
		EventStreamEnded + " Target=carrierpigeon",
		EventCircuitEnded + " ClientIP=999.1.1.1",
		EventStreamEnded + ` Host="unterminated`,
		EventStreamEnded + " Time=12.0000000001",
		EventStreamEnded + " Time=-5",
		"PRIVCOUNT_SOMETHING_NEW A=1",
	}
	for _, line := range bad {
		if _, err := p.Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestParseWall(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1514764800", 1514764800 * int64(1e9), true},
		{"1514764800.25", 1514764800*int64(1e9) + 250000000, true},
		{"3.000000001", 3*int64(1e9) + 1, true},
		{"12.", 12 * int64(1e9), true},
		{"", 0, false},
		{"-1", 0, false},
		{"1.2.3", 0, false},
		{"9223372036854775807.9", 0, false}, // overflow
	}
	for _, c := range cases {
		got, err := parseWall(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseWall(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseWall(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	// formatWall∘parseWall is the identity on nanosecond timestamps.
	for _, ns := range []int64{0, 1, 999999999, 1514764800 * int64(1e9), 1514764800*int64(1e9) + 123456789} {
		rt, err := parseWall(formatWall(ns))
		if err != nil || rt != ns {
			t.Errorf("round trip %d -> %q -> %d (%v)", ns, formatWall(ns), rt, err)
		}
	}
}

func TestSplitFields(t *testing.T) {
	kv, bare, err := splitFields(`A=1  B="two words" C= D=x\y BARE E="q\"uo\\te"`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"A": "1", "B": "two words", "C": "", "D": `x\y`, "E": `q"uo\te`}
	for k, v := range want {
		if kv[k] != v {
			t.Errorf("kv[%s] = %q, want %q", k, kv[k], v)
		}
	}
	if len(bare) != 1 || bare[0] != "BARE" {
		t.Errorf("bare = %v", bare)
	}
	if _, _, err := splitFields(`A="unterminated`); err == nil {
		t.Error("unterminated quote accepted")
	}
}

func TestQuoteString(t *testing.T) {
	for _, s := range []string{"", "plain", "two words", `with"quote`, `back\slash`, "nl\nand\rcr"} {
		q := quoteString(s)
		if !strings.HasPrefix(q, `"`) || !strings.HasSuffix(q, `"`) {
			t.Fatalf("quoteString(%q) = %q, not quoted", s, q)
		}
		val, rest, err := unquote(q)
		if err != nil || rest != "" || val != s {
			t.Errorf("unquote(quote(%q)) = %q, %q, %v", s, val, rest, err)
		}
	}
}
