package alexa

import (
	"fmt"
	"strings"
)

// Matcher maps a registered domain to a histogram bin, the operation
// behind PrivCount's set-membership counting (§3.1: "we add support for
// counting set membership using PrivCount histograms"). Bin layout is
// fixed at construction; Match is O(1) per domain.
type Matcher struct {
	labels []string
	// byDomain maps exact domains to a bin.
	byDomain map[string]int
	// byTLD maps a domain's TLD to a bin (wildcard *.tld matching);
	// only used when wildcards are enabled.
	byTLD map[string]int
	// tldRestrict, when non-nil, restricts byTLD matching to domains on
	// the list (the Figure 3 "Alexa only" variant).
	tldRestrict *List
	otherBin    int
}

// Labels returns the bin labels; the last label is always "other".
func (m *Matcher) Labels() []string {
	out := make([]string, len(m.labels))
	copy(out, m.labels)
	return out
}

// NumBins returns the number of bins including "other".
func (m *Matcher) NumBins() int { return len(m.labels) }

// Match returns the bin index for a registered domain.
func (m *Matcher) Match(domain string) int {
	domain = normalizeHost(domain)
	if bin, ok := m.byDomain[domain]; ok {
		return bin
	}
	if m.byTLD != nil {
		if m.tldRestrict != nil && !m.tldRestrict.Contains(domain) {
			return m.otherBin
		}
		if bin, ok := m.byTLD[TLD(domain)]; ok {
			return bin
		}
	}
	return m.otherBin
}

// RankSetMatcher builds the Figure 2 (top) histogram: rank ranges
// (0,10], (10,100], (100,1k], (1k,10k], (10k,100k], (100k,1m], a
// dedicated torproject.org bin, and "other". Set i>0 contains the first
// 10^(i+1) sites excluding those in set i−1 (§4.3).
func RankSetMatcher(l *List) *Matcher {
	boundaries := []int{10, 100, 1000, 10000, 100000, 1000000}
	var labels []string
	prev := 0
	for _, b := range boundaries {
		if prev >= l.N() {
			break
		}
		labels = append(labels, fmt.Sprintf("(%s,%s]", humanRank(prev), humanRank(b)))
		prev = b
	}
	labels = append(labels, "torproject.org", "other")
	m := &Matcher{
		labels:   labels,
		byDomain: make(map[string]int, l.N()),
		otherBin: len(labels) - 1,
	}
	torBin := len(labels) - 2
	for rank := 1; rank <= l.N(); rank++ {
		dom := l.Domain(rank)
		if dom == "torproject.org" {
			m.byDomain[dom] = torBin
			continue
		}
		bin := 0
		for bin < len(boundaries) && rank > boundaries[bin] {
			bin++
		}
		if bin < len(boundaries) {
			m.byDomain[dom] = bin
		}
	}
	return m
}

func humanRank(r int) string {
	switch {
	case r >= 1000000:
		return fmt.Sprintf("%dm", r/1000000)
	case r >= 1000:
		return fmt.Sprintf("%dk", r/1000)
	default:
		return fmt.Sprintf("%d", r)
	}
}

// SiblingSetMatcher builds the Figure 2 (bottom) histogram: one bin per
// top-10 site family (all list entries containing the site's basename),
// plus duckduckgo, torproject, and "other". When a domain belongs to
// multiple families (e.g. a hypothetical "googlefacebook.com") the
// earlier bin wins, matching a first-match counter implementation.
func SiblingSetMatcher(l *List) *Matcher {
	type fam struct{ label, basename string }
	fams := []fam{
		{"google (1)", "google"},
		{"youtube (2)", "youtube"},
		{"facebook (3)", "facebook"},
		{"baidu (4)", "baidu"},
		{"wikipedia (5)", "wikipedia"},
		{"yahoo (6)", "yahoo"},
		{"reddit (8)", "reddit"},
		{"qq (9)", "qq"},
		{"amazon (10)", "amazon"},
		{"duckduckgo", "duckduckgo"},
		{"torproject", "torproject"},
	}
	labels := make([]string, 0, len(fams)+1)
	for _, f := range fams {
		labels = append(labels, f.label)
	}
	labels = append(labels, "other")
	m := &Matcher{
		labels:   labels,
		byDomain: make(map[string]int),
		otherBin: len(labels) - 1,
	}
	for i, f := range fams {
		for _, dom := range l.Siblings(f.basename) {
			if _, taken := m.byDomain[dom]; !taken {
				m.byDomain[dom] = i
			}
		}
	}
	return m
}

// Figure3TLDs are the TLDs measured in Figure 3: every TLD with more
// than 10⁴ entries in the top-1M list — the three main TLDs and 11
// country TLDs.
var Figure3TLDs = []string{"com", "org", "net", "br", "cn", "de", "fr", "in", "ir", "it", "jp", "pl", "ru", "uk"}

// TLDMatcher builds a Figure 3 histogram: one wildcard *.tld bin per
// given TLD plus "other". If alexaOnly is non-nil, only domains on the
// list match the TLD bins (the second Figure 3 measurement); a separate
// torproject.org bin is used in that variant, mirroring the paper
// ("our implementation of wildcard matching restricted us from doing so
// when measuring all sites").
func TLDMatcher(tlds []string, alexaOnly *List) *Matcher {
	labels := make([]string, 0, len(tlds)+2)
	for _, t := range tlds {
		labels = append(labels, "."+strings.TrimPrefix(t, "."))
	}
	byTLD := make(map[string]int, len(tlds))
	for i, t := range tlds {
		byTLD[strings.TrimPrefix(t, ".")] = i
	}
	m := &Matcher{byTLD: byTLD, tldRestrict: alexaOnly}
	if alexaOnly != nil {
		m.byDomain = map[string]int{"torproject.org": len(labels)}
		labels = append(labels, "torproject.org")
	} else {
		m.byDomain = map[string]int{}
	}
	labels = append(labels, "other")
	m.labels = labels
	m.otherBin = len(labels) - 1
	return m
}

// CategoryMatcher builds the Alexa-categories histogram (§4.3): one bin
// per category list (each limited to 50 sites) plus "other" for domains
// in no measured category.
func CategoryMatcher(l *List) *Matcher {
	cats := Categories()
	labels := append(append([]string{}, cats...), "other")
	m := &Matcher{
		labels:   labels,
		byDomain: make(map[string]int),
		otherBin: len(labels) - 1,
	}
	for i, c := range cats {
		for _, dom := range l.CategoryList(c) {
			if _, taken := m.byDomain[dom]; !taken {
				m.byDomain[dom] = i
			}
		}
	}
	return m
}
