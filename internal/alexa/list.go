package alexa

import (
	"fmt"
	"strings"

	"repro/internal/simtime"
)

// Site is one entry of the synthetic top sites list.
type Site struct {
	Domain   string
	Category string
}

// List is a generated top-N sites list with rank lookup.
type List struct {
	sites    []Site
	byDomain map[string]int32 // domain -> 1-based rank
	psl      *PublicSuffixList
}

// Config controls list generation.
type Config struct {
	// N is the list size; the paper uses the top 1 million.
	N int
	// Seed makes generation reproducible.
	Seed uint64
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config { return Config{N: 1_000_000, Seed: 2018} }

// Planted constants from the paper (§4.3): the top-10 sites of the
// 2017-12-21 Alexa snapshot, duckduckgo (default Tor Browser search
// engine) at rank 342, and torproject.org at rank 10,244.
var plantedRanks = map[int]string{
	1:     "google.com",
	2:     "youtube.com",
	3:     "facebook.com",
	4:     "baidu.com",
	5:     "wikipedia.org",
	6:     "yahoo.com",
	7:     "google.co.in",
	8:     "reddit.com",
	9:     "qq.com",
	10:    "amazon.com",
	342:   "duckduckgo.com",
	10244: "torproject.org",
}

// siblingFamilies fixes how many list entries contain each top-10 site's
// basename. The paper reports the google family at 212 sites and reddit
// and qq at 3 each; the remaining sizes are plausible interpolations.
var siblingFamilies = map[string]int{
	"google":     212,
	"youtube":    12,
	"facebook":   16,
	"baidu":      8,
	"wikipedia":  24,
	"yahoo":      30,
	"reddit":     3,
	"qq":         3,
	"amazon":     40,
	"duckduckgo": 1,
	"torproject": 1,
}

// tldWeights drives the list's TLD composition. Every TLD in the
// Figure 3 measurement must appear in more than 10⁴ of 10⁶ entries;
// "other" TLDs fill the remainder.
var tldWeights = []struct {
	tld    string
	weight float64
}{
	{"com", 0.44}, {"org", 0.05}, {"net", 0.05},
	{"ru", 0.055}, {"de", 0.045}, {"uk", 0.028}, {"jp", 0.027},
	{"br", 0.024}, {"in", 0.023}, {"fr", 0.023}, {"it", 0.02},
	{"pl", 0.018}, {"cn", 0.018}, {"ir", 0.013},
	// long tail of other TLDs
	{"io", 0.02}, {"info", 0.02}, {"es", 0.015}, {"nl", 0.015},
	{"se", 0.012}, {"ca", 0.012}, {"au", 0.012}, {"us", 0.011},
	{"cz", 0.01}, {"ua", 0.01}, {"tr", 0.01}, {"kr", 0.01},
	{"mx", 0.01}, {"gr", 0.008}, {"ro", 0.008}, {"hu", 0.008},
	{"biz", 0.008}, {"co", 0.008}, {"edu", 0.006}, {"ar", 0.006},
	{"cl", 0.006}, {"id", 0.006}, {"my", 0.006}, {"th", 0.006},
	{"vn", 0.006}, {"za", 0.006}, {"pt", 0.005}, {"fi", 0.005},
	{"dk", 0.005}, {"no", 0.005}, {"ch", 0.005}, {"at", 0.005},
	{"be", 0.005}, {"sk", 0.004}, {"il", 0.004}, {"tw", 0.004},
}

// Categories mirror the Alexa "top sites by category" lists, which are
// limited to 50 sites each (§4.3). amazon.com is planted in Shopping.
var categoryNames = []string{
	"Arts", "Business", "Computers", "Games", "Health", "Home",
	"Kids", "News", "Recreation", "Reference", "Regional", "Science",
	"Shopping", "Society", "Sports", "Adult",
}

// CategoryListSize is Alexa's per-category limit.
const CategoryListSize = 50

// Generate builds the synthetic list. Generation is deterministic in
// the seed: the same configuration always yields the same list.
func Generate(cfg Config) *List {
	if cfg.N <= 0 {
		panic("alexa: list size must be positive")
	}
	r := simtime.Rand(cfg.Seed, "alexa-list")
	tldChoice := make([]float64, len(tldWeights))
	for i, tw := range tldWeights {
		tldChoice[i] = tw.weight
	}
	pick := simtime.NewWeightedChoice(tldChoice)

	l := &List{
		sites:    make([]Site, cfg.N),
		byDomain: make(map[string]int32, cfg.N),
		psl:      DefaultPSL(),
	}

	used := make(map[string]bool, cfg.N)
	// Plant the fixed-rank sites first.
	for rank, dom := range plantedRanks {
		if rank <= cfg.N {
			l.sites[rank-1].Domain = dom
			used[dom] = true
		}
	}
	// Plant sibling families at pseudo-random ranks: entries whose name
	// contains the family basename, e.g. maps.google.com.br-style
	// variants registered as distinct sites (google-mail.de, google.fr).
	for _, fam := range sortedFamilyNames() {
		count := siblingFamilies[fam]
		planted := 0
		// The family root itself is already planted in the top 10.
		for _, dom := range l.sites {
			if dom.Domain != "" && strings.Contains(dom.Domain, fam) {
				planted++
			}
		}
		for variant := 0; planted < count; variant++ {
			dom := familyVariant(r, fam, variant)
			if used[dom] {
				continue // e.g. the family root planted in the top 10
			}
			// Find a free random rank for it.
			rank := int(r.Uint64()%uint64(cfg.N)) + 1
			for l.sites[rank-1].Domain != "" {
				rank = int(r.Uint64()%uint64(cfg.N)) + 1
			}
			l.sites[rank-1].Domain = dom
			used[dom] = true
			planted++
		}
	}
	// Fill the rest with synthetic names. The syllable namespace is
	// finite, so after a few random attempts fall back to a unique
	// numeric suffix instead of retrying forever.
	for i := range l.sites {
		if l.sites[i].Domain != "" {
			continue
		}
		tld := tldWeights[pick.Pick(r)].tld
		var dom string
		for attempt := 0; ; attempt++ {
			name := syntheticName(r)
			if attempt >= 4 {
				dom = fmt.Sprintf("%s%d.%s", name, i, tld)
			} else {
				dom = name + "." + tld
			}
			if !used[dom] {
				break
			}
		}
		l.sites[i].Domain = dom
		used[dom] = true
	}
	// Assign categories: roughly half the list belongs to a category
	// directory, but only the 50 best-ranked per category form the
	// measured category lists.
	for i := range l.sites {
		if l.sites[i].Domain == "torproject.org" {
			continue // the paper notes torproject.org is in no category
		}
		if r.Float64() < 0.5 {
			l.sites[i].Category = categoryNames[int(r.Uint64()%uint64(len(categoryNames)))]
		}
	}
	if idx, ok := indexOf(l.sites, "amazon.com"); ok {
		l.sites[idx].Category = "Shopping"
	}
	for i, s := range l.sites {
		l.byDomain[s.Domain] = int32(i + 1)
	}
	return l
}

func indexOf(sites []Site, dom string) (int, bool) {
	for i, s := range sites {
		if s.Domain == dom {
			return i, true
		}
	}
	return 0, false
}

// sortedFamilyNames returns family basenames in deterministic order.
func sortedFamilyNames() []string {
	names := make([]string, 0, len(siblingFamilies))
	for n := range siblingFamilies {
		names = append(names, n)
	}
	// insertion sort; tiny slice, avoids importing sort for one call
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// familyVariant generates the n-th domain containing the family
// basename. Variants are distinct for distinct n (modulo the family
// root, which the caller skips), so planting always terminates.
func familyVariant(r interface{ Uint64() uint64 }, fam string, n int) string {
	tlds := []string{"com", "de", "fr", "co.uk", "com.br", "ru", "it", "pl", "co.jp", "co.in", "net", "es", "ca", "com.mx", "nl"}
	if n < len(tlds) {
		return fmt.Sprintf("%s.%s", fam, tlds[n])
	}
	if n%2 == 0 {
		return fmt.Sprintf("%s%d.com", fam, n)
	}
	return fmt.Sprintf("%s-%s%d.com", fam, syllable(r), n)
}

var consonants = []string{"b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "st", "tr", "ch"}
var vowels = []string{"a", "e", "i", "o", "u", "ai", "ou"}

func syllable(r interface{ Uint64() uint64 }) string {
	return consonants[int(r.Uint64()%uint64(len(consonants)))] + vowels[int(r.Uint64()%uint64(len(vowels)))]
}

// syntheticName produces a pronounceable pseudo-random SLD label.
func syntheticName(r interface{ Uint64() uint64 }) string {
	n := 2 + int(r.Uint64()%3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(syllable(r))
	}
	return b.String()
}

// N returns the list size.
func (l *List) N() int { return len(l.sites) }

// PSL returns the public-suffix list used to reduce hostnames.
func (l *List) PSL() *PublicSuffixList { return l.psl }

// Rank returns the 1-based rank of a registered domain, if listed.
func (l *List) Rank(domain string) (int, bool) {
	r, ok := l.byDomain[normalizeHost(domain)]
	return int(r), ok
}

// Domain returns the site at the given 1-based rank.
func (l *List) Domain(rank int) string {
	if rank < 1 || rank > len(l.sites) {
		return ""
	}
	return l.sites[rank-1].Domain
}

// Contains reports list membership for a registered domain.
func (l *List) Contains(domain string) bool {
	_, ok := l.Rank(domain)
	return ok
}

// Siblings returns every list entry whose domain contains the given
// basename, the construction behind the Figure 2 siblings measurement.
func (l *List) Siblings(basename string) []string {
	basename = strings.ToLower(basename)
	var out []string
	for _, s := range l.sites {
		if strings.Contains(s.Domain, basename) {
			out = append(out, s.Domain)
		}
	}
	return out
}

// CategoryList returns the up-to-50 best-ranked sites in the category,
// mirroring Alexa's per-category list limit.
func (l *List) CategoryList(category string) []string {
	var out []string
	for _, s := range l.sites {
		if s.Category == category {
			out = append(out, s.Domain)
			if len(out) == CategoryListSize {
				break
			}
		}
	}
	return out
}

// Categories returns the category names.
func Categories() []string {
	out := make([]string, len(categoryNames))
	copy(out, categoryNames)
	return out
}

// UniqueSLDs returns the number of distinct registered domains on the
// list (Table 2 compares unique observed SLDs against this population).
func (l *List) UniqueSLDs() int {
	seen := make(map[string]bool, len(l.sites))
	for _, s := range l.sites {
		if d, ok := l.psl.RegisteredDomain(s.Domain); ok {
			seen[d] = true
		}
	}
	return len(seen)
}
