// Package alexa provides a deterministic synthetic stand-in for the
// Alexa top 1 million sites list the paper uses as its destination model
// (§4.3), together with the public-suffix logic needed to reduce
// hostnames to registered (second-level) domains and the set matchers
// behind the Figure 2 and Figure 3 PrivCount histograms.
//
// The real list is proprietary and long gone; what the measurements
// depend on is only its *structure* — ranks, sibling families, TLD mix,
// category lists, and a heavy tail — so the generator plants the
// constants the paper cites (torproject.org at rank 10,244, duckduckgo
// at 342, a 212-site google family, 3-site reddit and qq families) and
// fills the rest with reproducible pseudo-random sites.
package alexa

import "strings"

// PublicSuffixList is a reduced public-suffix database: enough of the
// real list's semantics (multi-label suffixes like co.uk) to classify
// the synthetic site population, mirroring the paper's use of
// publicsuffix.org when counting unique SLDs (§4.3).
type PublicSuffixList struct {
	suffixes map[string]bool
}

// defaultSuffixes covers the TLDs the generator emits, including the 14
// TLDs Figure 3 measures, plus the multi-label country suffixes.
var defaultSuffixes = []string{
	"com", "org", "net", "edu", "gov", "info", "biz", "io", "co",
	"br", "cn", "de", "fr", "in", "ir", "it", "jp", "pl", "ru", "uk",
	"es", "nl", "se", "ca", "au", "us", "ch", "at", "be", "dk", "fi",
	"gr", "hu", "kr", "mx", "no", "nz", "pt", "ro", "tr", "tw", "ua",
	"cz", "sk", "il", "ar", "cl", "id", "my", "th", "vn", "za", "onion",
	// multi-label suffixes
	"co.uk", "org.uk", "ac.uk", "gov.uk",
	"com.br", "net.br", "org.br",
	"com.cn", "net.cn", "org.cn",
	"co.jp", "ne.jp", "or.jp",
	"co.in", "net.in", "org.in",
	"com.au", "net.au",
	"com.mx", "com.ar", "com.tr", "com.tw",
}

// NewPSL builds a suffix list from the given suffixes; nil selects the
// built-in default set.
func NewPSL(suffixes []string) *PublicSuffixList {
	if suffixes == nil {
		suffixes = defaultSuffixes
	}
	m := make(map[string]bool, len(suffixes))
	for _, s := range suffixes {
		m[strings.ToLower(strings.TrimPrefix(s, "."))] = true
	}
	return &PublicSuffixList{suffixes: m}
}

// defaultPSL is shared; the PSL is immutable after construction.
var defaultPSL = NewPSL(nil)

// DefaultPSL returns the built-in public suffix list.
func DefaultPSL() *PublicSuffixList { return defaultPSL }

// HasSuffix reports whether s (without leading dot) is a known public
// suffix.
func (p *PublicSuffixList) HasSuffix(s string) bool {
	return p.suffixes[strings.ToLower(s)]
}

// PublicSuffix returns the longest known public suffix of host, or ""
// if the host's TLD is unknown to the list.
func (p *PublicSuffixList) PublicSuffix(host string) string {
	host = normalizeHost(host)
	labels := strings.Split(host, ".")
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if p.suffixes[cand] {
			// Prefer the longest match: since we scan from the left,
			// the first hit is the longest.
			return cand
		}
	}
	return ""
}

// RegisteredDomain reduces a hostname to its registered domain (the
// public suffix plus one label): onionoo.torproject.org → torproject.org
// and www.amazon.com → amazon.com. The second return is false when the
// host has no known public suffix or no label before it.
func (p *PublicSuffixList) RegisteredDomain(host string) (string, bool) {
	host = normalizeHost(host)
	suffix := p.PublicSuffix(host)
	if suffix == "" {
		return "", false
	}
	if host == suffix {
		return "", false // bare suffix, nothing registered
	}
	rest := strings.TrimSuffix(host, "."+suffix)
	labels := strings.Split(rest, ".")
	last := labels[len(labels)-1]
	if last == "" {
		return "", false
	}
	return last + "." + suffix, true
}

// TLD returns the final label of a domain, the axis of the Figure 3
// histogram ("*.tld" wildcard matching).
func TLD(domain string) string {
	domain = normalizeHost(domain)
	i := strings.LastIndexByte(domain, '.')
	if i < 0 || i == len(domain)-1 {
		return ""
	}
	return domain[i+1:]
}

// normalizeHost lower-cases and strips a trailing dot.
func normalizeHost(h string) string {
	h = strings.ToLower(strings.TrimSuffix(h, "."))
	return h
}
