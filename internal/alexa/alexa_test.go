package alexa

import (
	"strings"
	"testing"
)

// testList is shared across tests; generation of 100k sites takes well
// under a second.
var testList = Generate(Config{N: 100_000, Seed: 42})

func TestPSLRegisteredDomain(t *testing.T) {
	psl := DefaultPSL()
	cases := []struct {
		host string
		want string
		ok   bool
	}{
		{"onionoo.torproject.org", "torproject.org", true},
		{"www.amazon.com", "amazon.com", true},
		{"amazon.com", "amazon.com", true},
		{"a.b.c.example.co.uk", "example.co.uk", true},
		{"example.com.br", "example.com.br", true},
		{"google.co.in", "google.co.in", true},
		{"com", "", false},
		{"co.uk", "", false},
		{"host.unknown-tld-xyz", "", false},
		{"WWW.EXAMPLE.COM", "example.com", true},
		{"example.com.", "example.com", true},
	}
	for _, c := range cases {
		got, ok := psl.RegisteredDomain(c.host)
		if got != c.want || ok != c.ok {
			t.Errorf("RegisteredDomain(%q) = %q,%v want %q,%v", c.host, got, ok, c.want, c.ok)
		}
	}
}

func TestPSLPublicSuffix(t *testing.T) {
	psl := DefaultPSL()
	if got := psl.PublicSuffix("a.b.co.uk"); got != "co.uk" {
		t.Fatalf("longest suffix: %q", got)
	}
	if got := psl.PublicSuffix("x.example.com"); got != "com" {
		t.Fatalf("single suffix: %q", got)
	}
	if got := psl.PublicSuffix("nosuffix.zzz"); got != "" {
		t.Fatalf("unknown suffix: %q", got)
	}
	if !psl.HasSuffix("COM") || psl.HasSuffix("zzz") {
		t.Fatal("HasSuffix")
	}
}

func TestTLDExtraction(t *testing.T) {
	for host, want := range map[string]string{
		"example.com":    "com",
		"example.co.uk":  "uk",
		"Example.RU":     "ru",
		"nodots":         "",
		"trailingdot.":   "",
		"torproject.org": "org",
	} {
		if got := TLD(host); got != want {
			t.Errorf("TLD(%q) = %q want %q", host, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 2000, Seed: 7})
	b := Generate(Config{N: 2000, Seed: 7})
	for r := 1; r <= 2000; r++ {
		if a.Domain(r) != b.Domain(r) {
			t.Fatalf("rank %d differs across identical seeds", r)
		}
	}
	c := Generate(Config{N: 2000, Seed: 8})
	diff := 0
	for r := 11; r <= 2000; r++ { // skip planted top-10
		if a.Domain(r) != c.Domain(r) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds must give different lists")
	}
}

func TestPlantedConstants(t *testing.T) {
	l := testList
	wantTop := []string{"google.com", "youtube.com", "facebook.com", "baidu.com",
		"wikipedia.org", "yahoo.com", "google.co.in", "reddit.com", "qq.com", "amazon.com"}
	for i, dom := range wantTop {
		if got := l.Domain(i + 1); got != dom {
			t.Errorf("rank %d = %q want %q", i+1, got, dom)
		}
	}
	if r, ok := l.Rank("duckduckgo.com"); !ok || r != 342 {
		t.Errorf("duckduckgo rank %d,%v want 342", r, ok)
	}
	if r, ok := l.Rank("torproject.org"); !ok || r != 10244 {
		t.Errorf("torproject rank %d,%v want 10244", r, ok)
	}
}

func TestSiblingFamilySizes(t *testing.T) {
	l := testList
	for fam, want := range map[string]int{"google": 212, "reddit": 3, "qq": 3, "duckduckgo": 1, "torproject": 1} {
		if got := len(l.Siblings(fam)); got != want {
			t.Errorf("family %q: %d sites, want %d", fam, got, want)
		}
	}
	// google.co.in must be inside the google family (paper: "including
	// the rank 7 site google.co.in").
	found := false
	for _, d := range l.Siblings("google") {
		if d == "google.co.in" {
			found = true
		}
	}
	if !found {
		t.Fatal("google.co.in missing from google family")
	}
}

func TestListUniqueDomains(t *testing.T) {
	l := testList
	seen := make(map[string]bool, l.N())
	for r := 1; r <= l.N(); r++ {
		d := l.Domain(r)
		if d == "" {
			t.Fatalf("empty domain at rank %d", r)
		}
		if seen[d] {
			t.Fatalf("duplicate domain %q", d)
		}
		seen[d] = true
		if back, ok := l.Rank(d); !ok || back != r {
			t.Fatalf("rank round trip for %q: %d,%v", d, back, ok)
		}
	}
}

func TestListDomainsHaveKnownSuffixes(t *testing.T) {
	l := testList
	psl := l.PSL()
	for r := 1; r <= l.N(); r += 97 {
		d := l.Domain(r)
		if _, ok := psl.RegisteredDomain(d); !ok {
			t.Fatalf("list domain %q has unknown suffix", d)
		}
	}
}

func TestFigure3TLDComposition(t *testing.T) {
	l := Generate(Config{N: 1_000_000, Seed: 11})
	counts := make(map[string]int)
	for r := 1; r <= l.N(); r++ {
		counts[TLD(l.Domain(r))]++
	}
	for _, tld := range Figure3TLDs {
		if counts[tld] <= 10_000 {
			t.Errorf("TLD %q has %d entries; Figure 3 requires > 10^4", tld, counts[tld])
		}
	}
	// .com must dominate.
	if counts["com"] < 300_000 {
		t.Errorf(".com underrepresented: %d", counts["com"])
	}
}

func TestDomainOutOfRange(t *testing.T) {
	if testList.Domain(0) != "" || testList.Domain(testList.N()+1) != "" {
		t.Fatal("out-of-range ranks must return empty")
	}
	if testList.Contains("not-on-the-list-at-all.com") {
		t.Fatal("Contains on absent domain")
	}
}

func TestCategoryLists(t *testing.T) {
	l := testList
	total := 0
	for _, c := range Categories() {
		sites := l.CategoryList(c)
		if len(sites) > CategoryListSize {
			t.Fatalf("category %q exceeds %d sites", c, CategoryListSize)
		}
		total += len(sites)
	}
	if total == 0 {
		t.Fatal("no category sites generated")
	}
	// amazon.com must be in Shopping (paper measures its category share).
	inShopping := false
	for _, d := range l.CategoryList("Shopping") {
		if d == "amazon.com" {
			inShopping = true
		}
	}
	if !inShopping {
		t.Fatal("amazon.com missing from Shopping category")
	}
	// torproject.org must be in no category.
	for _, c := range Categories() {
		for _, d := range l.CategoryList(c) {
			if d == "torproject.org" {
				t.Fatal("torproject.org must not be categorized")
			}
		}
	}
}

func TestRankSetMatcher(t *testing.T) {
	l := testList
	m := RankSetMatcher(l)
	labels := m.Labels()
	if labels[len(labels)-1] != "other" || labels[len(labels)-2] != "torproject.org" {
		t.Fatalf("labels: %v", labels)
	}
	if got := m.Match("google.com"); labels[got] != "(0,10]" {
		t.Fatalf("google.com bin: %s", labels[got])
	}
	if got := m.Match("duckduckgo.com"); labels[got] != "(100,1k]" {
		t.Fatalf("duckduckgo bin: %s", labels[got])
	}
	if got := m.Match("torproject.org"); labels[got] != "torproject.org" {
		t.Fatalf("torproject bin: %s", labels[got])
	}
	if got := m.Match("definitely-not-listed.xyz"); labels[got] != "other" {
		t.Fatalf("unlisted bin: %s", labels[got])
	}
	// Rank 50000 site lands in (10k,100k].
	if got := m.Match(l.Domain(50000)); labels[got] != "(10k,100k]" {
		t.Fatalf("rank-50000 bin: %s", labels[got])
	}
}

func TestSiblingSetMatcher(t *testing.T) {
	l := testList
	m := SiblingSetMatcher(l)
	labels := m.Labels()
	if got := m.Match("amazon.com"); labels[got] != "amazon (10)" {
		t.Fatalf("amazon bin: %s", labels[got])
	}
	if got := m.Match("google.co.in"); labels[got] != "google (1)" {
		t.Fatalf("google.co.in bin: %s", labels[got])
	}
	if got := m.Match("torproject.org"); labels[got] != "torproject" {
		t.Fatalf("torproject bin: %s", labels[got])
	}
	if got := m.Match("unrelated-site.ru"); labels[got] != "other" {
		t.Fatalf("other bin: %s", labels[got])
	}
	// Every sibling of amazon matches the amazon bin.
	for _, d := range l.Siblings("amazon") {
		if got := m.Match(d); labels[got] != "amazon (10)" && !strings.Contains(d, "google") {
			t.Fatalf("sibling %q in bin %s", d, labels[got])
		}
	}
}

func TestTLDMatcherAllSites(t *testing.T) {
	m := TLDMatcher(Figure3TLDs, nil)
	labels := m.Labels()
	if got := m.Match("whatever-site.ru"); labels[got] != ".ru" {
		t.Fatalf("wildcard .ru: %s", labels[got])
	}
	if got := m.Match("not-listed-site.com"); labels[got] != ".com" {
		t.Fatalf("wildcard .com must match non-Alexa domains: %s", labels[got])
	}
	if got := m.Match("site.xyz"); labels[got] != "other" {
		t.Fatalf("unmeasured TLD: %s", labels[got])
	}
	// All-sites variant has no dedicated torproject bin.
	if got := m.Match("torproject.org"); labels[got] != ".org" {
		t.Fatalf("all-sites torproject: %s", labels[got])
	}
}

func TestTLDMatcherAlexaOnly(t *testing.T) {
	l := testList
	m := TLDMatcher(Figure3TLDs, l)
	labels := m.Labels()
	// Listed site matches its TLD bin.
	if got := m.Match("google.com"); labels[got] != ".com" {
		t.Fatalf("listed .com: %s", labels[got])
	}
	// Unlisted domain with a measured TLD falls to other.
	if got := m.Match("unlisted-site-zq.com"); labels[got] != "other" {
		t.Fatalf("unlisted .com must be other: %s", labels[got])
	}
	// torproject.org gets its dedicated bin in the Alexa variant.
	if got := m.Match("torproject.org"); labels[got] != "torproject.org" {
		t.Fatalf("alexa torproject: %s", labels[got])
	}
}

func TestCategoryMatcher(t *testing.T) {
	l := testList
	m := CategoryMatcher(l)
	labels := m.Labels()
	if got := m.Match("amazon.com"); labels[got] != "Shopping" {
		t.Fatalf("amazon category: %s", labels[got])
	}
	if got := m.Match("torproject.org"); labels[got] != "other" {
		t.Fatalf("torproject category: %s", labels[got])
	}
}

func TestUniqueSLDs(t *testing.T) {
	n := testList.UniqueSLDs()
	if n <= 0 || n > testList.N() {
		t.Fatalf("unique SLDs: %d", n)
	}
	// The list consists of registered domains, so uniques ≈ N.
	if n < testList.N()*99/100 {
		t.Fatalf("unique SLDs %d far below list size %d", n, testList.N())
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with N=0 must panic")
		}
	}()
	Generate(Config{N: 0})
}

func BenchmarkMatchRankSet(b *testing.B) {
	m := RankSetMatcher(testList)
	doms := []string{"google.com", "torproject.org", "unlisted.zz", testList.Domain(54321)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(doms[i%len(doms)])
	}
}

func BenchmarkGenerate100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{N: 100_000, Seed: uint64(i)})
	}
}
