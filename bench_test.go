// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation. Each Benchmark<ID> runs the corresponding
// experiment end to end — simulated network, real protocol rounds,
// statistical inference — and logs the rendered report next to the
// paper's published values. Run with:
//
//	go test -bench=. -benchmem
//
// Scale note: benchmarks simulate 1/1000th of Tor by default (override
// with REPRO_SCALE); values are scaled back to paper magnitude in the
// reports. The shape comparisons in EXPERIMENTS.md were produced from
// this harness.
package repro

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/elgamal"
	"repro/internal/privcount"
	"repro/internal/stats"
	"repro/internal/wire"
)

// benchEnv returns the shared benchmark environment. Experiments are
// independent, but the Alexa list and databases are cached inside.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *core.Env
)

func benchEnv() *core.Env {
	benchEnvOnce.Do(func() {
		scale := 1000.0
		if s := os.Getenv("REPRO_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v >= 1 {
				scale = v
			}
		}
		benchEnvVal = &core.Env{Scale: scale, Seed: 2018, AlexaN: 200_000, ProofRounds: 1}
	})
	return benchEnvVal
}

// runExperimentBench executes one registered experiment per iteration
// and logs the report once.
func runExperimentBench(b *testing.B, id string) {
	env := benchEnv()
	logged := false
	for i := 0; i < b.N; i++ {
		rep, err := core.Run(id, env)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !logged {
			b.Logf("\n%s", rep)
			logged = true
			if len(rep.Rows) > 0 {
				b.ReportMetric(rep.Rows[0].Value.Value, "row0")
			}
		}
	}
}

// --- One benchmark per paper table and figure (DESIGN.md §3) ---

func BenchmarkTable1ActionBounds(b *testing.B)      { runExperimentBench(b, "table1") }
func BenchmarkFig1ExitStreams(b *testing.B)         { runExperimentBench(b, "fig1") }
func BenchmarkFig2AlexaSets(b *testing.B)           { runExperimentBench(b, "fig2") }
func BenchmarkFig3TLD(b *testing.B)                 { runExperimentBench(b, "fig3") }
func BenchmarkTable2UniqueSLD(b *testing.B)         { runExperimentBench(b, "table2") }
func BenchmarkTable3GuardModel(b *testing.B)        { runExperimentBench(b, "table3") }
func BenchmarkTable4ClientUsage(b *testing.B)       { runExperimentBench(b, "table4") }
func BenchmarkTable5UniqueClients(b *testing.B)     { runExperimentBench(b, "table5") }
func BenchmarkFig4Countries(b *testing.B)           { runExperimentBench(b, "fig4") }
func BenchmarkTable6OnionAddresses(b *testing.B)    { runExperimentBench(b, "table6") }
func BenchmarkTable7DescriptorFetches(b *testing.B) { runExperimentBench(b, "table7") }
func BenchmarkTable8Rendezvous(b *testing.B)        { runExperimentBench(b, "table8") }
func BenchmarkBaselineMetrics(b *testing.B)         { runExperimentBench(b, "baseline") }
func BenchmarkScheduleBudget(b *testing.B)          { runExperimentBench(b, "schedule") }
func BenchmarkCategories(b *testing.B)              { runExperimentBench(b, "categories") }
func BenchmarkSummary(b *testing.B)                 { runExperimentBench(b, "summary") }

// --- Ablation benchmarks for the design choices in DESIGN.md §4 ---

// BenchmarkAblationTransport compares a PrivCount round over in-memory
// pipes against TCP loopback: the cost of real sockets in the
// deployment path.
func BenchmarkAblationTransport(b *testing.B) {
	statsCfg := []privcount.StatConfig{{Name: "s", Bins: make([]string, 32), Sigma: 10}}
	for i := range statsCfg[0].Bins {
		statsCfg[0].Bins[i] = fmt.Sprintf("b%d", i)
	}

	runRound := func(mkConn func() (*wire.Conn, *wire.Conn, func())) error {
		tally, err := privcount.NewTally(privcount.TallyConfig{
			Round: 1, Stats: statsCfg, NumDCs: 4, NumSKs: 2,
		})
		if err != nil {
			return err
		}
		var tsConns []wire.Messenger
		var cleanup []func()
		var wg, setup sync.WaitGroup
		var dcs []*privcount.DC
		for j := 0; j < 2; j++ {
			ts, side, cl := mkConn()
			tsConns = append(tsConns, ts)
			cleanup = append(cleanup, cl)
			sk, err := privcount.NewSK(fmt.Sprintf("sk%d", j), side)
			if err != nil {
				return err
			}
			wg.Add(1)
			go func() { defer wg.Done(); sk.Serve() }()
		}
		for j := 0; j < 4; j++ {
			ts, side, cl := mkConn()
			tsConns = append(tsConns, ts)
			cleanup = append(cleanup, cl)
			dc := privcount.NewDC(fmt.Sprintf("dc%d", j), side, nil)
			dcs = append(dcs, dc)
			setup.Add(1)
			go func() { defer setup.Done(); dc.Setup() }()
		}
		done := make(chan error, 1)
		go func() {
			_, err := tally.Run(tsConns)
			done <- err
		}()
		setup.Wait()
		for _, dc := range dcs {
			for k := 0; k < 1000; k++ {
				dc.Increment("s", k%32, 1)
			}
			dc.Finish()
		}
		err = <-done
		wg.Wait()
		for _, cl := range cleanup {
			cl()
		}
		return err
	}

	b.Run("pipe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := runRound(func() (*wire.Conn, *wire.Conn, func()) {
				a, c := wire.Pipe()
				return a, c, func() { a.Close(); c.Close() }
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ln, err := wire.Listen("127.0.0.1:0", nil)
			if err != nil {
				b.Fatal(err)
			}
			accepted := make(chan *wire.Conn, 8)
			go func() {
				for {
					c, err := ln.Accept()
					if err != nil {
						return
					}
					accepted <- c
				}
			}()
			err = runRound(func() (*wire.Conn, *wire.Conn, func()) {
				side, err := wire.Dial(ln.Addr().String(), nil, 0)
				if err != nil {
					b.Fatal(err)
				}
				ts := <-accepted
				return ts, side, func() { ts.Close(); side.Close() }
			})
			ln.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPSCTableSize sweeps the PSC hash-table size and
// reports the collision bias the estimator must correct: the
// bandwidth/accuracy trade-off of DESIGN.md §4.3.
func BenchmarkAblationPSCTableSize(b *testing.B) {
	const items = 4000
	for _, bins := range []int{1 << 12, 1 << 13, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("bins-%d", bins), func(b *testing.B) {
			var bias float64
			for i := 0; i < b.N; i++ {
				bias = stats.CollisionBias(bins, items)
				mean, _ := stats.OccupancyMoments(bins, items)
				est := stats.InvertOccupancy(bins, mean)
				if math.Abs(est-items) > items/100 {
					b.Fatalf("estimator off: %v", est)
				}
			}
			b.ReportMetric(bias, "collision-bias")
			b.ReportMetric(bias/items*100, "bias-%")
		})
	}
}

// BenchmarkAblationShuffleRounds sweeps the cut-and-choose soundness
// parameter: proof cost grows linearly while cheating probability
// halves per round (DESIGN.md §4.4).
func BenchmarkAblationShuffleRounds(b *testing.B) {
	key := elgamal.GenerateKey()
	in := make([]elgamal.Ciphertext, 32)
	for i := range in {
		in[i] = elgamal.EncryptBit(key.PK, i%2 == 0)
	}
	out, w := elgamal.Shuffle(key.PK, in)
	for _, rounds := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("rounds-%d", rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				proof := elgamal.ProveShuffle(key.PK, in, out, w, rounds)
				if err := elgamal.VerifyShuffle(key.PK, in, out, proof); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(math.Pow(2, -float64(rounds)), "soundness-err")
		})
	}
}

// BenchmarkAblationNoiseAllocation compares equal vs PrivCount-optimal
// budget allocation: the worst-case relative error across statistics of
// very different magnitudes (DESIGN.md §4.5 — why per-country bins
// drown in noise).
func BenchmarkAblationNoiseAllocation(b *testing.B) {
	specs := []dp.Statistic{
		{Name: "big", Sensitivity: 651, Expected: 1.2e7},
		{Name: "mid", Sensitivity: 651, Expected: 4e5},
		{Name: "small", Sensitivity: 651, Expected: 9e3},
	}
	for _, mode := range []struct {
		name string
		m    dp.AllocationMode
	}{{"equal", dp.AllocateEqual}, {"optimal", dp.AllocateOptimal}} {
		b.Run(mode.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				alloc, err := dp.Allocate(dp.StudyParams(), specs, mode.m)
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, s := range specs {
					rel := alloc.Sigmas[s.Name] / s.Expected
					if rel > worst {
						worst = rel
					}
				}
			}
			b.ReportMetric(worst*100, "worst-rel-noise-%")
		})
	}
}

// BenchmarkAblationFixedPoint quantifies the quantization error of the
// counter fixed-point width against narrower alternatives (DESIGN.md
// §4.2).
func BenchmarkAblationFixedPoint(b *testing.B) {
	quantize := func(v float64, bits uint) float64 {
		scale := float64(uint64(1) << bits)
		return math.Round(v*scale) / scale
	}
	noise := []float64{0.318, -1234.567891, 3.25e9 + 0.4303, -0.000071}
	for _, bits := range []uint{8, 16, 24} {
		b.Run(fmt.Sprintf("frac-bits-%d", bits), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				worst = 0
				for _, v := range noise {
					if e := math.Abs(quantize(v, bits) - v); e > worst {
						worst = e
					}
				}
			}
			b.ReportMetric(worst, "max-abs-error")
		})
	}
}
