// Clientcount: count unique Tor clients without ever storing an IP.
//
// This example reproduces the paper's §5.1 unique-client measurement in
// miniature using PSC: data collectors at the guard relays hash each
// observed client IP into an encrypted bit table and discard it; three
// computation parties mix and jointly decrypt only the number of
// distinct clients, plus calibrated binomial noise. It then applies the
// naive users-per-IP inference the paper uses to conclude Tor Metrics
// undercounts users by ~4x.
//
//	go run ./examples/clientcount
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/tornet"
)

func main() {
	env := &core.Env{Scale: 1500, Seed: 5, AlexaN: 50_000, ProofRounds: 1}

	fr := tornet.StudyFractions()
	fr.Guard = 0.0119 // the paper's guard weight for this measurement

	sim, err := env.BuildSim(fr, 0)
	if err != nil {
		log.Fatal(err)
	}
	guards := sim.Net.Consensus.MeasuringGuards()

	res, err := env.RunPSC(core.PSCRun{
		Fractions: fr,
		Days:      1,
		Relays:    guards, // only relays in a position to observe (§3.1)
		Item: func(ev event.Event) (string, bool) {
			c, ok := ev.(*event.ConnectionEnd)
			if !ok {
				return "", false
			}
			return c.ClientIP.String(), true // hashed and discarded by the DC
		},
		Sensitivity:    4, // Table 1: 4 new IPs per user-day
		ExpectedUnique: int(11e6 / env.Scale * 0.04),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol output: %d non-empty bins of %d (noise trials %d)\n",
		res.Raw.Reported, res.Raw.Bins, res.Raw.NoiseTrials)
	local := res.Interval
	fmt.Printf("unique client IPs at our guards:   %s\n", local)
	fmt.Printf("scaled to the paper's deployment:  %s  (paper: 313,213)\n", local.Scale(env.Scale))

	// The paper's naive estimate: each client contacts ~3 guards.
	users := local.Scale(env.Scale / fr.Guard / 3)
	fmt.Printf("naive daily-user estimate:         %.3g  (paper: ~8.77M; Tor Metrics said 2.15M)\n", users.Value)
}
