// Exitdomains: measure which web domains Tor users visit, privately.
//
// This example runs the paper's §4.3 Alexa-siblings measurement: a
// PrivCount histogram over the top-10 site families, showing the
// torproject.org and amazon.com anomalies, and demonstrates the
// matcher/public-suffix machinery on raw hostnames.
//
//	go run ./examples/exitdomains
package main

import (
	"fmt"
	"log"

	"repro/internal/alexa"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/tornet"
)

func main() {
	env := &core.Env{Scale: 1500, Seed: 11, AlexaN: 100_000, ProofRounds: 1}
	list := env.Alexa()
	psl := list.PSL()
	matcher := alexa.SiblingSetMatcher(list)

	fmt.Println("sibling families from the synthetic Alexa list:")
	for _, fam := range []string{"google", "amazon", "reddit"} {
		fmt.Printf("  %-8s %3d sites (e.g. %v)\n", fam, len(list.Siblings(fam)), list.Siblings(fam)[0])
	}

	const stat = "siblings"
	run := core.PrivCountRun{
		Fractions: tornet.StudyFractions(),
		Days:      1,
		Counters: []core.CounterSpec{{
			Name: stat, Bins: matcher.Labels(),
			// Table 1: 20 domain connections per user-day.
			Sensitivity: 20,
		}},
		Handle: func(ev event.Event, inc core.Incrementer) {
			s, ok := ev.(*event.StreamEnd)
			if !ok || !s.IsInitial || s.Target != event.TargetHostname || !s.IsWebPort() {
				return
			}
			// onionoo.torproject.org -> torproject.org, etc.
			dom, ok := psl.RegisteredDomain(s.Hostname)
			if !ok {
				dom = s.Hostname
			}
			inc(stat, matcher.Match(dom), 1)
		},
	}
	res, err := env.RunPrivCount(run)
	if err != nil {
		log.Fatal(err)
	}

	total := 0.0
	for bin := range matcher.Labels() {
		if v := res.Values[stat][bin]; v > 0 {
			total += v
		}
	}
	fmt.Println("\nprimary-domain shares (paper: torproject 39.0%, amazon 9.7%, google 2.4%):")
	for bin, label := range matcher.Labels() {
		share := res.Interval(stat, bin).ClampNonNegative().Scale(100 / total)
		fmt.Printf("  %-14s %6.1f%%  (CI ±%.1f)\n", label, share.Value, share.Width()/2)
	}
}
