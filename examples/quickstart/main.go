// Quickstart: run one privacy-preserving measurement of the simulated
// Tor network end to end.
//
// This example reproduces the paper's headline exit measurement in
// miniature: a 24-hour PrivCount round over 16 measuring relays
// counting exit streams, inferred network-wide, with differential
// privacy noise calibrated from the Table 1 action bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/tornet"
)

func main() {
	// An Env bundles the synthetic substrates (Alexa list, GeoIP, AS
	// database) and the simulation scale: 1/2000th of Tor runs in
	// about a second.
	env := &core.Env{Scale: 2000, Seed: 42, AlexaN: 50_000, ProofRounds: 1}

	// Declare what to measure. Sensitivity comes from the paper's
	// action bounds: one user's reasonable daily activity creates at
	// most ~600 exit streams.
	run := core.PrivCountRun{
		Fractions: tornet.StudyFractions(), // 1.5% exit weight, etc.
		Days:      1,
		Counters: []core.CounterSpec{{
			Name:        "streams",
			Bins:        []string{"initial", "subsequent"},
			Sensitivity: 600,
		}},
		Handle: func(ev event.Event, inc core.Incrementer) {
			if s, ok := ev.(*event.StreamEnd); ok {
				bin := 1
				if s.IsInitial {
					bin = 0
				}
				inc("streams", bin, 1)
			}
		},
	}

	// This spins up the full deployment — a tally server, one data
	// collector per relay, three share keepers — over the message
	// transport, runs a virtual day of Tor usage, and aggregates.
	res, err := env.RunPrivCount(run)
	if err != nil {
		log.Fatal(err)
	}

	// Infer network-wide totals by dividing by the exit weight
	// fraction, then convert to paper scale.
	for bin, label := range []string{"initial", "subsequent"} {
		local := res.Interval("streams", bin)
		total, err := stats.InferTotal(local, tornet.StudyFractions().Exit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s streams/day network-wide: %s\n",
			label, total.Scale(env.Scale).ClampNonNegative())
	}
	fmt.Println("paper: ~2.1e9 total, ~5% initial (Figure 1)")
}
