// Onionstudy: measure onion-service health from HSDir and rendezvous
// vantage points.
//
// This example reproduces the paper's most striking §6 findings in
// miniature: ~90% of v2 descriptor lookups fail (stale botnet address
// lists), and >90% of rendezvous circuits never complete. It runs one
// PrivCount round counting descriptor-fetch outcomes and rendezvous
// circuit fates simultaneously, under a single differential-privacy
// budget allocation.
//
//	go run ./examples/onionstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/onion"
	"repro/internal/tornet"
)

func main() {
	env := &core.Env{Scale: 1500, Seed: 3, AlexaN: 50_000, ProofRounds: 1}

	var index *onion.PublicIndex
	const (
		statFetch = "fetch-outcome"
		statRend  = "rend-outcome"
		statIdx   = "fetch-indexed"
	)
	run := core.PrivCountRun{
		Fractions: tornet.StudyFractions(),
		Days:      1,
		Counters: []core.CounterSpec{
			{Name: statFetch, Bins: []string{"ok", "not-found", "malformed"}, Sensitivity: 30},
			{Name: statIdx, Bins: []string{"public", "unknown"}, Sensitivity: 30},
			{Name: statRend, Bins: []string{"succeeded", "conn-closed", "expired"}, Sensitivity: 360},
		},
		Handle: func(ev event.Event, inc core.Incrementer) {
			switch v := ev.(type) {
			case *event.DescFetched:
				switch v.Outcome {
				case event.FetchOK:
					inc(statFetch, 0, 1)
					bin := 1
					if index != nil && index.Contains(v.Address) {
						bin = 0
					}
					inc(statIdx, bin, 1)
				case event.FetchNotFound:
					inc(statFetch, 1, 1)
				case event.FetchMalformed:
					inc(statFetch, 2, 1)
				}
			case *event.RendezvousEnd:
				switch v.Outcome {
				case event.RendSucceeded:
					inc(statRend, 0, 1)
				case event.RendConnClosed:
					inc(statRend, 1, 1)
				case event.RendExpired:
					inc(statRend, 2, 1)
				}
			}
		},
	}
	res, err := env.RunPrivCountWithSim(run, func(sim *core.Sim) {
		index = sim.Driver.Onions.Index()
	})
	if err != nil {
		log.Fatal(err)
	}

	share := func(stat string, bin, nbins int) float64 {
		total := 0.0
		for b := 0; b < nbins; b++ {
			if v := res.Values[stat][b]; v > 0 {
				total += v
			}
		}
		if total == 0 {
			return 0
		}
		return 100 * res.Values[stat][bin] / total
	}

	fmt.Println("descriptor fetches (paper: 90.9% fail):")
	fmt.Printf("  ok         %5.1f%%\n", share(statFetch, 0, 3))
	fmt.Printf("  not-found  %5.1f%%\n", share(statFetch, 1, 3))
	fmt.Printf("  malformed  %5.1f%%\n", share(statFetch, 2, 3))

	fmt.Println("successful fetches by index status (paper: 56.8% public):")
	fmt.Printf("  public     %5.1f%%\n", share(statIdx, 0, 2))
	fmt.Printf("  unknown    %5.1f%%\n", share(statIdx, 1, 2))

	fmt.Println("rendezvous circuits (paper: 8.08% succeed, 84.9% expire):")
	fmt.Printf("  succeeded  %5.1f%%\n", share(statRend, 0, 3))
	fmt.Printf("  conn-close %5.1f%%\n", share(statRend, 1, 3))
	fmt.Printf("  expired    %5.1f%%\n", share(statRend, 2, 3))
}
