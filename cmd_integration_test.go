package repro

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCmdDeployment builds the real binaries and runs the full daemon
// deployment as separate processes over TLS-pinned TCP loopback: torsim
// feeding three datacollector daemons which, with two sharekeepers,
// serve four PrivCount rounds over their single sessions — two
// concurrent, then two sequential — with round 2 aborted mid-stream by
// the tally. The abort must cost exactly that round: the sessions
// survive and the remaining rounds complete.
func TestCmdDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	bindir := t.TempDir()
	for _, name := range []string{"torsim", "tally", "sharekeeper", "datacollector"} {
		cmd := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bindir, name), "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	// torsim: small population, three collector slots (relays 0-2 are
	// measuring exits).
	torsim := newProc(ctx, t, filepath.Join(bindir, "torsim"),
		"-listen", "127.0.0.1:0", "-wait", "3", "-scale", "20000", "-days", "1", "-alexa", "2000")
	torsimAddr := torsim.waitForAddr(t, "torsim: listening on ")

	// tally: the Figure 1 statistic schema with small sigmas; four
	// rounds, two in flight at a time, the second cancelled mid-stream.
	spec := "exit-streams:initial,subsequent:10;initial-target:hostname,ipv4,ipv6:10;hostname-port:web,other:10"
	const rounds = 4
	tally := newProc(ctx, t, filepath.Join(bindir, "tally"),
		"-protocol", "privcount", "-listen", "127.0.0.1:0", "-tls",
		"-dcs", "3", "-sks", "2", "-stats", spec,
		"-rounds", fmt.Sprintf("%d", rounds), "-concurrency", "2", "-abort-round", "2")
	tallyAddr := tally.waitForAddr(t, "listening on ")
	pin := tally.waitForAddr(t, "tally: fingerprint ")

	var procs []*proc
	for i := 0; i < 2; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "sharekeeper"),
			"-tally", tallyAddr, "-pin", pin, "-name", fmt.Sprintf("sk-%d", i)))
	}
	for i := 0; i < 3; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "datacollector"),
			"-tally", tallyAddr, "-pin", pin, "-torsim", torsimAddr,
			"-rounds", fmt.Sprintf("%d", rounds),
			"-relay", fmt.Sprintf("%d", i), "-name", fmt.Sprintf("dc-%d", i)))
	}

	for _, p := range append(procs, torsim) {
		p.mustSucceed(t)
	}
	tally.mustSucceed(t)

	out := tally.output()
	// Three successful rounds, each with the full statistic set.
	if got := strings.Count(out, "results:"); got != rounds-1 {
		t.Fatalf("want %d successful rounds, got %d:\n%s", rounds-1, got, out)
	}
	for _, want := range []string{"exit-streams/initial =", "hostname-port/web ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("tally output missing %q:\n%s", want, out)
		}
	}
	// The aborted round failed with the drill reason, nothing else did.
	if got := strings.Count(out, "failed:"); got != 1 {
		t.Fatalf("want exactly 1 failed round, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "operator abort drill") {
		t.Fatalf("tally output missing the abort reason:\n%s", out)
	}
	t.Logf("tally output:\n%s", out)
}

// TestCmdDeploymentChurn is the party-churn acceptance drill as real
// processes: three datacollector daemons serve a PrivCount fleet under
// a dcs=2 quorum; dc-2 is SIGKILLed mid-round after its contribution
// barrier (shares distributed, collection begun) and restarted with the
// same pinned identity and token. The in-flight round must complete
// degraded — result annotated with the absence, no wedge — and the next
// round must run at full party strength over the rejoined daemon.
func TestCmdDeploymentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	bindir := t.TempDir()
	for _, name := range []string{"torsim", "tally", "sharekeeper", "datacollector"} {
		cmd := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bindir, name), "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	// The feed waits for FOUR collectors while only three DCs start:
	// the event stream — and with it the end of round 1 — is gated on
	// the restarted dc-2 subscribing, so the kill below is guaranteed
	// to land mid-round however fast the machine runs the simulation.
	torsim := newProc(ctx, t, filepath.Join(bindir, "torsim"),
		"-listen", "127.0.0.1:0", "-wait", "4", "-scale", "20000", "-days", "1", "-alexa", "2000")
	torsimAddr := torsim.waitForAddr(t, "torsim: listening on ")

	spec := "exit-streams:initial,subsequent:10;initial-target:hostname,ipv4,ipv6:10;hostname-port:web,other:10"
	tally := newProc(ctx, t, filepath.Join(bindir, "tally"),
		"-protocol", "privcount", "-listen", "127.0.0.1:0", "-tls",
		"-dcs", "3", "-sks", "2", "-stats", spec,
		"-rounds", "2", "-concurrency", "1",
		"-quorum", "dcs=2", "-rejoin-grace", "10s")
	tallyAddr := tally.waitForAddr(t, "listening on ")
	pin := tally.waitForAddr(t, "tally: fingerprint ")

	var procs []*proc
	for i := 0; i < 2; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "sharekeeper"),
			"-tally", tallyAddr, "-pin", pin, "-name", fmt.Sprintf("sk-%d", i)))
	}
	dcArgs := func(i, rounds int) []string {
		return []string{
			"-tally", tallyAddr, "-pin", pin, "-torsim", torsimAddr,
			"-rounds", fmt.Sprintf("%d", rounds),
			"-relay", fmt.Sprintf("%d", i), "-name", fmt.Sprintf("dc-%d", i),
			"-token", fmt.Sprintf("secret-%d", i),
		}
	}
	for i := 0; i < 2; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "datacollector"), dcArgs(i, 2)...))
	}
	doomed := newProc(ctx, t, filepath.Join(bindir, "datacollector"), dcArgs(2, 2)...)
	t.Cleanup(func() {
		if t.Failed() {
			for _, p := range append(procs, doomed, torsim) {
				t.Logf("%s output:\n%s", p.name, p.output())
			}
		}
	})

	// Kill dc-2 once round 1 has begun collection on it: its blinding
	// shares are distributed, so the barrier is passed and the round
	// must degrade rather than resume it.
	doomed.waitForAddr(t, "dc-2: round 1 started")
	doomed.cmd.Process.Kill()

	// Restart under the same pinned identity; the engine rebinds it and
	// round 2 runs at full strength.
	procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "datacollector"), dcArgs(2, 1)...))

	for _, p := range append(procs, torsim) {
		p.mustSucceed(t)
	}
	tally.mustSucceed(t)

	out := tally.output()
	if got := strings.Count(out, "results:"); got != 2 {
		t.Fatalf("want 2 completed rounds, got %d:\n%s", got, out)
	}
	if got := strings.Count(out, "failed:"); got != 0 {
		t.Fatalf("want no failed rounds, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "round 1 degraded: absent parties: dc-2") {
		t.Fatalf("round 1 not annotated degraded without dc-2:\n%s", out)
	}
	if strings.Contains(out, "round 2 degraded") {
		t.Fatalf("round 2 ran degraded after the rejoin:\n%s", out)
	}
	// The restarted daemon re-registered under its pinned identity.
	if got := strings.Count(out, `datacollector "dc-2"`); got != 2 {
		t.Fatalf("want 2 dc-2 registrations (initial + rejoin), got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "engine/parties-rejoined") {
		t.Fatalf("fleet metrics missing the rejoin counter:\n%s", out)
	}
	t.Logf("churn tally output:\n%s", out)
}

// TestCmdDeploymentPSC runs the PSC daemons: torsim feeding two
// datacollectors at guard relays, a tally, and two computation
// parties, counting unique client IPs across two concurrent rounds
// over single sessions. Every daemon runs with -netem lan, so the
// whole round trip flows through shaped connections — the flag, the
// profile parser, and the write-side shaper are all on the data path.
func TestCmdDeploymentPSC(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	bindir := t.TempDir()
	for _, name := range []string{"torsim", "tally", "psc-cp", "datacollector"} {
		cmd := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bindir, name), "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	torsim := newProc(ctx, t, filepath.Join(bindir, "torsim"),
		"-listen", "127.0.0.1:0", "-wait", "2", "-scale", "20000", "-days", "1", "-alexa", "2000")
	torsimAddr := torsim.waitForAddr(t, "torsim: listening on ")

	tally := newProc(ctx, t, filepath.Join(bindir, "tally"),
		"-protocol", "psc", "-listen", "127.0.0.1:0", "-netem", "lan",
		"-dcs", "2", "-cps", "2", "-bins", "1024", "-noise", "16", "-proof-rounds", "1",
		"-rounds", "2", "-concurrency", "2")
	tallyAddr := tally.waitForAddr(t, "listening on ")

	var procs []*proc
	for i := 0; i < 2; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "psc-cp"),
			"-tally", tallyAddr, "-netem", "lan", "-name", fmt.Sprintf("cp-%d", i)))
	}
	// Guards are relays 6 and 7 in the default consensus.
	for i := 0; i < 2; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "datacollector"),
			"-tally", tallyAddr, "-torsim", torsimAddr, "-rounds", "2", "-netem", "lan",
			"-relay", fmt.Sprintf("%d", 6+i), "-name", fmt.Sprintf("dc-%d", i)))
	}
	for _, p := range append(procs, torsim) {
		p.mustSucceed(t)
	}
	tally.mustSucceed(t)
	out := tally.output()
	if got := strings.Count(out, "distinct count ="); got != 2 {
		t.Fatalf("want 2 psc round results, got %d:\n%s", got, out)
	}
	t.Logf("psc tally output:\n%s", out)
}

// proc wraps a running command with captured output and line-watching.
type proc struct {
	cmd   *exec.Cmd
	name  string
	mu    sync.Mutex
	buf   strings.Builder
	lines chan string
	done  chan error
}

func newProc(ctx context.Context, t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{
		cmd:   exec.CommandContext(ctx, bin, args...),
		name:  filepath.Base(bin),
		lines: make(chan string, 256),
		done:  make(chan error, 1),
	}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout // interleave; Stdout is the pipe
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", p.name, err)
	}
	// Drain the pipe fully before reaping: Wait closes the pipe, so a
	// concurrent pump can lose the process's final output lines.
	go func() {
		p.pump(stdout)
		p.done <- p.cmd.Wait()
	}()
	t.Cleanup(func() { p.cmd.Process.Kill() })
	return p
}

func (p *proc) pump(r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		p.mu.Lock()
		p.buf.WriteString(line)
		p.buf.WriteByte('\n')
		p.mu.Unlock()
		select {
		case p.lines <- line:
		default:
		}
	}
	close(p.lines)
}

// waitForAddr scans output lines for a prefix and returns the rest of
// the line (the bound address).
// waitForAddr deadline: generous because `go test ./...` runs this
// package concurrently with the heavy core suite on 1-vCPU CI runners.
func (p *proc) waitForAddr(t *testing.T, prefix string) string {
	t.Helper()
	deadline := time.After(120 * time.Second)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("%s exited before printing %q:\n%s", p.name, prefix, p.output())
			}
			if i := strings.Index(line, prefix); i >= 0 {
				addr := strings.Fields(line[i+len(prefix):])[0]
				addr = strings.TrimSuffix(addr, ",")
				return addr
			}
		case <-deadline:
			t.Fatalf("%s did not print %q in time:\n%s", p.name, prefix, p.output())
		}
	}
}

func (p *proc) mustSucceed(t *testing.T) {
	t.Helper()
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("%s failed: %v\n%s", p.name, err, p.output())
		}
	case <-time.After(150 * time.Second):
		t.Fatalf("%s did not finish in time:\n%s", p.name, p.output())
	}
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}
