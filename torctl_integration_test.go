package repro

import (
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCmdDeploymentTorControl runs the live-ingestion deployment as
// separate processes: torsim feeds two mock instrumented relays
// (cmd/mockrelay), each serving a Tor control port; two datacollector
// daemons ingest PRIVCOUNT_* events over authenticated control
// connections (-tor-control) instead of the torsim socket; and a tally
// in -protocol both mode runs a PSC round and a PrivCount round
// concurrently over the same DC sessions. One relay authenticates by
// SAFECOOKIE cookie file, the other by password. The cookie relay
// drops its control connection mid-feed (-drop-after): the collector
// must reconnect, resume the replay, and both rounds must still
// complete. The tally's engine runs with a round deadline and a
// privacy-budget accountant, and dumps per-round and fleet metrics.
func TestCmdDeploymentTorControl(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	bindir := t.TempDir()
	for _, name := range []string{"torsim", "mockrelay", "tally", "psc-cp", "sharekeeper", "datacollector"} {
		cmd := exec.CommandContext(ctx, "go", "build", "-o", filepath.Join(bindir, name), "./cmd/"+name)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
	}

	// torsim feeds the two mock relays (each takes the full event feed,
	// so both protocols see observations on every DC).
	torsim := newProc(ctx, t, filepath.Join(bindir, "torsim"),
		"-listen", "127.0.0.1:0", "-wait", "2", "-scale", "20000", "-days", "1", "-alexa", "2000")
	torsimAddr := torsim.waitForAddr(t, "torsim: listening on ")

	// Mock relay A: cookie auth, and the churn drill — drop the
	// controller after 400 event lines, once.
	cookiePath := filepath.Join(t.TempDir(), "control_auth_cookie")
	relayA := newProc(ctx, t, filepath.Join(bindir, "mockrelay"),
		"-listen", "127.0.0.1:0", "-torsim", torsimAddr, "-relay", "all",
		"-cookie-file", cookiePath, "-drop-after", "400")
	relayAAddr := relayA.waitForAddr(t, "mockrelay: listening on ")

	// Mock relay B: password auth, no drop.
	const password = "s3kr1t pass"
	relayB := newProc(ctx, t, filepath.Join(bindir, "mockrelay"),
		"-listen", "127.0.0.1:0", "-torsim", torsimAddr, "-relay", "all",
		"-password", password)
	relayBAddr := relayB.waitForAddr(t, "mockrelay: listening on ")

	// Tally in mixed mode: one PSC + one PrivCount round concurrently,
	// with a round deadline and a privacy budget that exactly covers
	// the pair.
	spec := "exit-streams:initial,subsequent:10;initial-target:hostname,ipv4,ipv6:10;hostname-port:web,other:10"
	tally := newProc(ctx, t, filepath.Join(bindir, "tally"),
		"-protocol", "both", "-listen", "127.0.0.1:0", "-tls",
		"-dcs", "2", "-sks", "2", "-cps", "2", "-stats", spec,
		"-bins", "1024", "-noise", "16", "-proof-rounds", "1",
		"-rounds", "1", "-concurrency", "1",
		"-round-deadline", "150s", "-budget", "2")
	tallyAddr := tally.waitForAddr(t, "listening on ")
	pin := tally.waitForAddr(t, "tally: fingerprint ")

	var procs []*proc
	for i := 0; i < 2; i++ {
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "sharekeeper"),
			"-tally", tallyAddr, "-pin", pin, "-name", fmt.Sprintf("sk-%d", i)))
		procs = append(procs, newProc(ctx, t, filepath.Join(bindir, "psc-cp"),
			"-tally", tallyAddr, "-pin", pin, "-name", fmt.Sprintf("cp-%d", i)))
	}
	dcA := newProc(ctx, t, filepath.Join(bindir, "datacollector"),
		"-tally", tallyAddr, "-pin", pin, "-rounds", "2", "-name", "dc-0",
		"-tor-control", relayAAddr, "-tor-cookie", cookiePath, "-relay", "0")
	dcB := newProc(ctx, t, filepath.Join(bindir, "datacollector"),
		"-tally", tallyAddr, "-pin", pin, "-rounds", "2", "-name", "dc-1",
		"-tor-control", relayBAddr, "-tor-password", password, "-relay", "1")
	procs = append(procs, dcA, dcB, relayA, relayB, torsim)

	for _, p := range procs {
		p.mustSucceed(t)
	}
	tally.mustSucceed(t)

	out := tally.output()
	// Both rounds of the pair completed: one PSC distinct count, one
	// PrivCount statistic set, no failures.
	if got := strings.Count(out, "distinct count ="); got != 1 {
		t.Errorf("want 1 PSC result, got %d:\n%s", got, out)
	}
	if got := strings.Count(out, "results:"); got != 2 {
		t.Errorf("want 2 round results, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		"exit-streams/initial =",
		"privacy budget capped at 2 rounds",
		"2/2 rounds complete",
		"fleet metrics:",
		"engine/psc/round/rounds-completed 1",
		"engine/privcount/round/rounds-completed 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tally output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "failed:") {
		t.Errorf("tally reported a failed round:\n%s", out)
	}
	if got := strings.Count(out, "metrics: wall="); got != 2 {
		t.Errorf("want 2 per-round metric lines, got %d:\n%s", got, out)
	}

	// The churn drill happened and was survived: relay A dropped the
	// connection, the collector reconnected and resumed.
	if !strings.Contains(relayA.output(), "churn drill") {
		t.Errorf("mock relay A never dropped the connection:\n%s", relayA.output())
	}
	outA := dcA.output()
	if !strings.Contains(outA, "reconnected to") {
		t.Errorf("dc-0 never reconnected:\n%s", outA)
	}
	if strings.Contains(outA, "reconnects=0") {
		t.Errorf("dc-0 reports zero reconnects despite the drill:\n%s", outA)
	}
	// The password-authenticated collector had an uneventful session
	// and consumed the full deterministic trace.
	outB := dcB.output()
	if !strings.Contains(outB, "reconnects=0") {
		t.Errorf("dc-1 reconnected unexpectedly:\n%s", outB)
	}
	if !strings.Contains(outB, "skipped=0") {
		t.Errorf("dc-1 skipped event lines:\n%s", outB)
	}
	t.Logf("tally output:\n%s", out)
}
